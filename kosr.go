// Package kosr answers top-k optimal sequenced route (KOSR) queries on
// general directed weighted graphs, reproducing "Finding Top-k Optimal
// Sequenced Routes" (Liu, Jin, Yang, Zhou — ICDE 2018, arXiv:1802.08014).
//
// A KOSR query (s, t, C, k) asks for the k cheapest routes from s to t
// that pass through the vertex categories C = ⟨C1, …, Cj⟩ in order (e.g.
// a shopping mall, then a restaurant, then a cinema). Edge weights are
// arbitrary non-negative costs; the triangle inequality is not assumed.
//
// # Quick start
//
//	g := kosr.Figure1()                     // the paper's example graph
//	sys := kosr.NewSystem(g)                // builds the 2-hop label indexes
//	s, _ := g.VertexByName("s")
//	t, _ := g.VertexByName("t")
//	ma, _ := g.CategoryByName("MA")
//	re, _ := g.CategoryByName("RE")
//	ci, _ := g.CategoryByName("CI")
//	res, _ := sys.Do(ctx, kosr.Request{
//		Source: s, Target: t, Categories: []kosr.Category{ma, re, ci}, K: 3,
//	})
//	// res.Routes[0].Cost == 20, …[1].Cost == 21, …[2].Cost == 22
//
// Every query enters the system as a Request answered by System.Do (all
// routes at once) or System.DoStream (routes one at a time, lazily).
// Both honour context cancellation: an abandoned request aborts its
// in-flight search within one engine check interval. The default solver
// is StarKOSR (the paper's fastest method); Request fields select
// PruningKOSR, the KPNE baseline, Dijkstra-based nearest-neighbour
// discovery, the Section IV-C variants, and the search budgets.
package kosr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/graph"
	"repro/internal/invindex"
	"repro/internal/label"
)

// Re-exported graph types: the full graph API (builders, IO, categories)
// lives on these types.
type (
	// Graph is a directed weighted graph with vertex categories.
	Graph = graph.Graph
	// Builder accumulates vertices, edges, and categories.
	Builder = graph.Builder
	// Vertex identifies a vertex (dense integers in [0, N)).
	Vertex = graph.Vertex
	// Category identifies a vertex category.
	Category = graph.Category
	// Weight is a non-negative edge or path cost.
	Weight = graph.Weight

	// Query is a KOSR query (s, t, C, k).
	Query = core.Query
	// Route is a witness with its cost.
	Route = core.Route
	// Stats reports search statistics (examined routes, NN queries,
	// time breakdown).
	Stats = core.Stats
	// Method selects the route search algorithm.
	Method = core.Method
	// VariantQuery is a KOSR query with the Section IV-C variants:
	// optional source, optional destination, per-category filters.
	VariantQuery = core.VariantQuery
	// Filters restricts categories to preferred vertices.
	Filters = core.Filters
)

// The route search algorithms.
const (
	// KPNE is the baseline (Algorithm 1 extended to top-k).
	KPNE = core.MethodKPNE
	// PruningKOSR is the dominance-based algorithm (Algorithm 2).
	PruningKOSR = core.MethodPK
	// StarKOSR is the A*-style algorithm (Section IV-B); the default.
	StarKOSR = core.MethodSK
)

// NewBuilder returns a graph builder for n vertices.
func NewBuilder(n int, directed bool) *Builder { return graph.NewBuilder(n, directed) }

// ReadGraph parses a graph in the text format produced by Graph.WriteTo.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// ReadDIMACS parses a road network in the 9th DIMACS Challenge
// shortest-path format (the distribution format of the paper's COL and
// FLA datasets). Categories must be assigned separately.
func ReadDIMACS(r io.Reader) (*Graph, error) { return graph.ReadDIMACS(r) }

// Figure1 returns the running-example graph of the paper.
func Figure1() *Graph { return graph.Figure1() }

// Options tunes a query made through the deprecated Solve/SolveVariant/
// Stream entry points. New code should set the same fields on Request.
type Options struct {
	// Method selects the algorithm; the zero value selects StarKOSR.
	Method Method
	// UseDijkstraNN replaces the inverted-label FindNN with incremental
	// Dijkstra searches (the paper's -Dij variants). Works even on a
	// System built with NewSystemWithoutIndex.
	UseDijkstraNN bool
	// MaxExamined, MaxDuration and TimeBreakdown are forwarded to the
	// engine; see the core package documentation.
	MaxExamined   int64
	MaxDuration   time.Duration
	TimeBreakdown bool
}

// ErrBudgetExceeded is returned by the deprecated Solve-family wrappers
// when MaxExamined or MaxDuration tripped before k routes were found.
// System.Do reports the same condition as Result.Truncated instead.
var ErrBudgetExceeded = core.ErrBudgetExceeded

// Request is the single query surface of the system: a KOSR query
// (s, t, C, k), the Section IV-C variant switches, the algorithm
// selection, and the search budgets — everything that used to be spread
// across Query, VariantQuery and Options. Answer it with System.Do or
// System.DoStream.
type Request struct {
	// Source is the start vertex; ignored when NoSource is set (the
	// route may then start at any vertex of the first category).
	Source Vertex
	// Target is the destination; ignored when NoTarget is set (the
	// route then ends at the last category).
	Target Vertex
	// Categories is the category sequence C = ⟨C1, …, Cj⟩ that feasible
	// routes must visit in order.
	Categories []Category
	// K is the number of routes Do returns. DoStream treats K as an
	// optional cap: zero streams until the witness space is exhausted.
	K int

	// NoSource and NoTarget select the Section IV-C variants. StarKOSR
	// degrades to PruningKOSR when NoTarget disables the A* estimate.
	NoSource bool
	NoTarget bool
	// Filters restricts categories to preferred vertices (the paper's
	// "Italian restaurants" example). Requests with filters are not
	// cacheable — see CanonicalKey.
	Filters Filters

	// Method selects the algorithm; the zero value selects StarKOSR.
	Method Method
	// UseDijkstraNN replaces the inverted-label FindNN with incremental
	// Dijkstra searches (the paper's -Dij variants).
	UseDijkstraNN bool

	// MaxExamined aborts the search after this many examined routes
	// (0 = unlimited); Do reports the trip as Result.Truncated.
	MaxExamined int64
	// MaxDuration aborts the search after this much wall-clock time
	// (0 = unlimited). Prefer a context deadline where possible; both
	// are honoured.
	MaxDuration time.Duration
	// TimeBreakdown enables the Table X wall-clock attribution in
	// Result.Stats; it adds timer overhead.
	TimeBreakdown bool
}

// variant reports whether the request needs the Section IV-C engine.
func (r Request) variant() bool {
	return r.NoSource || r.NoTarget || len(r.Filters) > 0
}

func (r Request) coreOptions() core.Options {
	return core.Options{
		Method:        r.Method,
		MaxExamined:   r.MaxExamined,
		MaxDuration:   r.MaxDuration,
		TimeBreakdown: r.TimeBreakdown,
	}
}

// CanonicalKey renders the request as a canonical string so that any
// two requests answered by the same search share one key — the cache
// key of the server's result cache. ok is false when the request cannot
// be keyed (per-category filter functions have no canonical form);
// such requests must bypass result caches.
//
// The key covers everything that changes the routes or the truncation
// behaviour (method, NN backend, endpoints, variant switches, category
// sequence, k, MaxExamined). It deliberately excludes MaxDuration and
// TimeBreakdown: wall-clock budgets are nondeterministic, so cache
// users must only store results that completed without tripping one —
// those are byte-identical regardless of either field.
func (r Request) CanonicalKey() (key string, ok bool) {
	if len(r.Filters) > 0 {
		return "", false
	}
	var b strings.Builder
	b.Grow(64)
	b.WriteString("m")
	b.WriteString(strconv.Itoa(int(r.Method)))
	if r.UseDijkstraNN {
		b.WriteString("d")
	}
	b.WriteString("|s")
	if r.NoSource {
		b.WriteString("*")
	} else {
		b.WriteString(strconv.Itoa(int(r.Source)))
	}
	b.WriteString("|t")
	if r.NoTarget {
		b.WriteString("*")
	} else {
		b.WriteString(strconv.Itoa(int(r.Target)))
	}
	b.WriteString("|k")
	b.WriteString(strconv.Itoa(r.K))
	b.WriteString("|x")
	b.WriteString(strconv.FormatInt(r.MaxExamined, 10))
	b.WriteString("|c")
	for i, c := range r.Categories {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(strconv.Itoa(int(c)))
	}
	return b.String(), true
}

// Result is a Do answer: the routes, the search statistics, and whether
// a budget truncated the search before K routes were found.
type Result struct {
	// Routes holds up to K routes in nondecreasing cost order; fewer
	// routes mean fewer feasible routes exist (or Truncated is set).
	Routes []Route
	// Stats reports the search effort (examined routes, NN queries,
	// time breakdown when requested).
	Stats *Stats
	// Truncated marks that MaxExamined or MaxDuration tripped first;
	// Routes holds the (possibly empty) partial result.
	Truncated bool
}

// System bundles a graph with the indexes needed to answer queries.
// Concurrent queries are safe: the indexes are read-only during query
// answering and every query checks its mutable search state out of a
// per-provider scratch pool. Share one System across workers —
// per-query Systems defeat the pool. The Section IV-C dynamic updates
// (AddVertexCategory, InsertEdge, …) mutate the indexes and need
// external synchronization against in-flight queries, as before.
type System struct {
	Graph *Graph
	// Labels is the 2-hop label index (nil when the system was created
	// with NewSystemWithoutIndex).
	Labels *label.Index
	// Inverted is the per-category inverted label index.
	Inverted *invindex.Index

	// Long-lived providers: each owns the sync.Pool of query scratches,
	// so they must be shared across queries rather than rebuilt.
	provMu    sync.Mutex
	labelProv *core.LabelProvider
	dijProv   *core.DijkstraProvider
}

// NewSystem builds the 2-hop label index and the inverted label index
// for g. Preprocessing is O(|V|) pruned Dijkstra searches; see
// Labels.Stats for the resulting sizes.
func NewSystem(g *Graph) *System {
	lab := label.Build(g)
	return &System{Graph: g, Labels: lab, Inverted: invindex.Build(g, lab)}
}

// NewSystemWithoutIndex returns a System that answers every query with
// Dijkstra-based nearest-neighbour discovery (no preprocessing).
func NewSystemWithoutIndex(g *Graph) *System { return &System{Graph: g} }

func (s *System) provider(opt Options) (core.Provider, error) {
	s.provMu.Lock()
	defer s.provMu.Unlock()
	if opt.UseDijkstraNN || s.Labels == nil {
		if s.dijProv == nil || s.dijProv.Graph != s.Graph {
			s.dijProv = &core.DijkstraProvider{Graph: s.Graph}
		}
		return s.dijProv, nil
	}
	if s.labelProv == nil || s.labelProv.Graph != s.Graph ||
		s.labelProv.Labels != s.Labels || s.labelProv.Inv != s.Inverted {
		s.labelProv = &core.LabelProvider{Graph: s.Graph, Labels: s.Labels, Inv: s.Inverted}
	}
	return s.labelProv, nil
}

// Do answers a Request: up to req.K routes in nondecreasing cost order,
// with the search statistics. A search that trips req.MaxExamined or
// req.MaxDuration is not an error — the routes found so far come back
// with Result.Truncated set, so callers can degrade gracefully.
//
// Cancelling ctx aborts an in-flight search within one engine pop-loop
// check interval, returns the query scratch to the provider's pool, and
// reports ctx.Err(). A ctx deadline, by contrast, acts as a wall-clock
// budget like MaxDuration: expiry yields a Truncated result with the
// routes found so far. A nil ctx behaves like context.Background().
func (s *System) Do(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	prov, err := s.provider(Options{UseDijkstraNN: req.UseDijkstraNN})
	if err != nil {
		return nil, err
	}
	var routes []Route
	var st *Stats
	if req.variant() {
		routes, st, err = core.SolveVariant(ctx, s.Graph, VariantQuery{
			Source: req.Source, NoSource: req.NoSource,
			Target: req.Target, NoTarget: req.NoTarget,
			Categories: req.Categories, K: req.K,
			Filters: req.Filters,
		}, prov, req.coreOptions())
	} else {
		routes, st, err = core.Solve(ctx, s.Graph,
			Query{Source: req.Source, Target: req.Target, Categories: req.Categories, K: req.K},
			prov, req.coreOptions())
	}
	if errors.Is(err, core.ErrBudgetExceeded) {
		return &Result{Routes: routes, Stats: st, Truncated: true}, nil
	}
	if err != nil {
		return nil, err
	}
	return &Result{Routes: routes, Stats: st}, nil
}

// DoStream answers a Request progressively: the returned iterator
// yields routes one at a time in nondecreasing cost order, computing
// each only when asked for — PNE-family searches are inherently
// progressive, so the (i+1)-th route costs only the extra expansion
// beyond the i-th. req.K caps the stream when positive; zero streams
// until the witness space is exhausted.
//
// The search state is released as soon as the iteration ends — by
// exhaustion, by breaking out of the range loop, or by ctx being
// cancelled (the pending step then yields ctx.Err()). A budget trip
// yields ErrBudgetExceeded as the final element.
func (s *System) DoStream(ctx context.Context, req Request) iter.Seq2[Route, error] {
	return func(yield func(Route, error) bool) {
		sr, err := s.openSearcher(ctx, req)
		if err != nil {
			yield(Route{}, err)
			return
		}
		defer sr.Close()
		for n := 0; req.K <= 0 || n < req.K; n++ {
			r, ok, err := sr.Next()
			if err != nil {
				yield(Route{}, err)
				return
			}
			if !ok || !yield(r, nil) {
				return
			}
		}
	}
}

// openSearcher builds the progressive searcher behind DoStream and the
// deprecated Stream entry point.
func (s *System) openSearcher(ctx context.Context, req Request) (*core.Searcher, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	prov, err := s.provider(Options{UseDijkstraNN: req.UseDijkstraNN})
	if err != nil {
		return nil, err
	}
	if req.variant() {
		return core.NewVariantSearcher(ctx, s.Graph, VariantQuery{
			Source: req.Source, NoSource: req.NoSource,
			Target: req.Target, NoTarget: req.NoTarget,
			Categories: req.Categories, K: req.K,
			Filters: req.Filters,
		}, prov, req.coreOptions())
	}
	return core.NewSearcher(ctx, s.Graph,
		Query{Source: req.Source, Target: req.Target, Categories: req.Categories, K: req.K},
		prov, req.coreOptions())
}

// TopK answers the KOSR query (src, dst, cats, k) with StarKOSR. Fewer
// than k routes are returned when fewer feasible routes exist.
//
// Deprecated: use Do, which adds cancellation.
func (s *System) TopK(src, dst Vertex, cats []Category, k int) ([]Route, error) {
	routes, _, err := s.Solve(Query{Source: src, Target: dst, Categories: cats, K: k}, Options{})
	return routes, err
}

// Solve answers a query with full control over the algorithm and limits.
//
// Deprecated: use Do. Solve is a thin wrapper that rebuilds the old
// contract (routes + ErrBudgetExceeded on truncation) from a Result.
func (s *System) Solve(q Query, opt Options) ([]Route, *Stats, error) {
	return s.doCompat(Request{
		Source: q.Source, Target: q.Target, Categories: q.Categories, K: q.K,
		Method: opt.Method, UseDijkstraNN: opt.UseDijkstraNN,
		MaxExamined: opt.MaxExamined, MaxDuration: opt.MaxDuration,
		TimeBreakdown: opt.TimeBreakdown,
	})
}

// SolveVariant answers a query variant of Section IV-C: no required
// source (routes start at any vertex of the first category), no required
// destination (routes end at the last category; StarKOSR degrades to
// PruningKOSR), and per-category preference filters.
//
// Deprecated: use Do with the NoSource/NoTarget/Filters fields set.
func (s *System) SolveVariant(q VariantQuery, opt Options) ([]Route, *Stats, error) {
	return s.doCompat(Request{
		Source: q.Source, NoSource: q.NoSource,
		Target: q.Target, NoTarget: q.NoTarget,
		Categories: q.Categories, K: q.K, Filters: q.Filters,
		Method: opt.Method, UseDijkstraNN: opt.UseDijkstraNN,
		MaxExamined: opt.MaxExamined, MaxDuration: opt.MaxDuration,
		TimeBreakdown: opt.TimeBreakdown,
	})
}

// doCompat adapts Do back to the historical (routes, stats, error)
// contract of the deprecated wrappers.
func (s *System) doCompat(req Request) ([]Route, *Stats, error) {
	res, err := s.Do(context.Background(), req)
	if err != nil {
		return nil, nil, err
	}
	if res.Truncated {
		return res.Routes, res.Stats, core.ErrBudgetExceeded
	}
	return res.Routes, res.Stats, nil
}

// Stream starts a progressive search that yields routes one at a time in
// nondecreasing cost order (q.K is ignored): call Next on the returned
// Searcher until ok is false.
//
// Deprecated: use DoStream, which adds cancellation and releases the
// search state automatically when the iteration ends.
func (s *System) Stream(q Query, opt Options) (*core.Searcher, error) {
	return s.openSearcher(context.Background(), Request{
		Source: q.Source, Target: q.Target, Categories: q.Categories,
		Method: opt.Method, UseDijkstraNN: opt.UseDijkstraNN,
		MaxExamined: opt.MaxExamined, MaxDuration: opt.MaxDuration,
		TimeBreakdown: opt.TimeBreakdown,
	})
}

// OptimalRoute answers an OSR query (k = 1). ok is false when no
// feasible route exists.
//
// Deprecated: use Do with K = 1.
func (s *System) OptimalRoute(src, dst Vertex, cats []Category) (Route, bool, error) {
	routes, _, err := s.Solve(Query{Source: src, Target: dst, Categories: cats, K: 1}, Options{})
	if err != nil || len(routes) == 0 {
		return Route{}, false, err
	}
	return routes[0], true, nil
}

// GSP answers an OSR query with the dynamic-programming baseline of Rice
// & Tsotras (the paper's state-of-the-art OSR comparator).
func (s *System) GSP(src, dst Vertex, cats []Category) (Route, bool, error) {
	r, _, ok, err := core.GSP(s.Graph, Query{Source: src, Target: dst, Categories: cats, K: 1})
	return r, ok, err
}

// ExpandWitness expands a witness into an actual route: a vertex walk in
// which consecutive vertices are joined by edges.
func (s *System) ExpandWitness(witness []Vertex) []Vertex {
	return core.ExpandWitness(s.Graph, witness)
}

// ShortestPath returns the exact shortest-path distance dis(u, v),
// answered from the label index when available.
func (s *System) ShortestPath(u, v Vertex) Weight {
	if s.Labels != nil {
		return s.Labels.Dist(u, v)
	}
	prov := &core.DijkstraProvider{Graph: s.Graph}
	return prov.DistTo(v)(u)
}

// AddVertexCategory registers category c on vertex v in the inverted
// label index (the dynamic category update of Section IV-C). Queries
// issued after the call see the new membership; the underlying Graph is
// immutable and unaffected.
func (s *System) AddVertexCategory(v Vertex, c Category) error {
	if s.Inverted == nil {
		return fmt.Errorf("kosr: dynamic updates require a label index")
	}
	s.Inverted.AddVertexCategory(v, c)
	return nil
}

// RemoveVertexCategory undoes AddVertexCategory.
func (s *System) RemoveVertexCategory(v Vertex, c Category) error {
	if s.Inverted == nil {
		return fmt.Errorf("kosr: dynamic updates require a label index")
	}
	s.Inverted.RemoveVertexCategory(v, c)
	return nil
}

// InsertEdge applies a graph-structure update (Section IV-C): a new arc
// (u, v, w) — or a cheaper parallel arc, modelling a weight decrease —
// is folded into the 2-hop labels incrementally and the inverted label
// index is refreshed. The overlay dyn must be created once per System
// with NewDynamic(sys.Graph) and shared across calls.
//
// Label-based queries issued after the call observe the new edge.
// Dijkstra-based queries (UseDijkstraNN) and GSP traverse the immutable
// base graph and do not; rebuild the graph with dyn.Rebuild() and a new
// System for those.
func (s *System) InsertEdge(dyn *graph.Dynamic, u, v Vertex, w Weight) error {
	if s.Labels == nil {
		return fmt.Errorf("kosr: dynamic updates require a label index")
	}
	if err := dyn.AddEdge(u, v, w); err != nil {
		return err
	}
	updates := s.Labels.InsertEdge(dyn, u, v, w)
	if !s.Graph.Directed() && u != v {
		updates = append(updates, s.Labels.InsertEdge(dyn, v, u, w)...)
	}
	s.Inverted.Refresh(s.Graph, updates)
	return nil
}

// NewDynamic returns the edge overlay used with InsertEdge.
func (s *System) NewDynamic() *graph.Dynamic { return graph.NewDynamic(s.Graph) }

// SaveIndex serializes the label index (rebuild the inverted index with
// LoadSystem after reading it back).
func (s *System) SaveIndex(w io.Writer) error {
	if s.Labels == nil {
		return fmt.Errorf("kosr: no label index to save")
	}
	_, err := s.Labels.WriteTo(w)
	return err
}

// LoadSystem reconstructs a System from a graph and a label index
// serialized with SaveIndex.
func LoadSystem(g *Graph, r io.Reader) (*System, error) {
	lab, err := label.Read(r)
	if err != nil {
		return nil, err
	}
	if lab.NumVertices() != g.NumVertices() {
		return nil, fmt.Errorf("kosr: index covers %d vertices, graph has %d",
			lab.NumVertices(), g.NumVertices())
	}
	return &System{Graph: g, Labels: lab, Inverted: invindex.Build(g, lab)}, nil
}

// SaveDiskStore materializes the index as the on-disk store of Section
// IV-C (per-category sections located through a B+ tree).
func (s *System) SaveDiskStore(dir string) error {
	if s.Labels == nil {
		return fmt.Errorf("kosr: no label index to save")
	}
	return disk.Write(dir, s.Graph, s.Labels)
}

// DiskSystem answers queries from a disk store, loading only the
// sections each query touches (the paper's SK-DB method).
type DiskSystem struct {
	Graph *Graph
	Store *disk.Store
}

// OpenDiskSystem opens a store written by SaveDiskStore.
func OpenDiskSystem(g *Graph, dir string) (*DiskSystem, error) {
	st, err := disk.Open(dir)
	if err != nil {
		return nil, err
	}
	if st.NumVertices() != g.NumVertices() {
		st.Close()
		return nil, fmt.Errorf("kosr: store covers %d vertices, graph has %d",
			st.NumVertices(), g.NumVertices())
	}
	return &DiskSystem{Graph: g, Store: st}, nil
}

// Close releases the store's files.
func (d *DiskSystem) Close() error { return d.Store.Close() }

// Do answers a Request from disk, loading roughly |C|+4 records.
// Variant requests are not supported by the disk store.
func (d *DiskSystem) Do(ctx context.Context, req Request) (*Result, error) {
	if req.variant() {
		return nil, fmt.Errorf("kosr: disk stores do not answer variant requests")
	}
	lab, inv, err := d.Store.LoadQuery(req.Categories, req.Source, req.Target)
	if err != nil {
		return nil, err
	}
	prov := &core.LabelProvider{Graph: d.Graph, Labels: lab, Inv: inv}
	routes, st, err := core.Solve(ctx, d.Graph,
		Query{Source: req.Source, Target: req.Target, Categories: req.Categories, K: req.K},
		prov, req.coreOptions())
	if errors.Is(err, core.ErrBudgetExceeded) {
		return &Result{Routes: routes, Stats: st, Truncated: true}, nil
	}
	if err != nil {
		return nil, err
	}
	return &Result{Routes: routes, Stats: st}, nil
}

// Solve answers a query, loading roughly |C|+4 records from disk.
//
// Deprecated: use Do, which adds cancellation.
func (d *DiskSystem) Solve(q Query, opt Options) ([]Route, *Stats, error) {
	res, err := d.Do(context.Background(), Request{
		Source: q.Source, Target: q.Target, Categories: q.Categories, K: q.K,
		Method: opt.Method, MaxExamined: opt.MaxExamined,
		MaxDuration: opt.MaxDuration, TimeBreakdown: opt.TimeBreakdown,
	})
	if err != nil {
		return nil, nil, err
	}
	if res.Truncated {
		return res.Routes, res.Stats, core.ErrBudgetExceeded
	}
	return res.Routes, res.Stats, nil
}

// TopK answers the query with StarKOSR from disk.
func (d *DiskSystem) TopK(src, dst Vertex, cats []Category, k int) ([]Route, error) {
	routes, _, err := d.Solve(Query{Source: src, Target: dst, Categories: cats, K: k}, Options{})
	return routes, err
}
