// Package kosr answers top-k optimal sequenced route (KOSR) queries on
// general directed weighted graphs, reproducing "Finding Top-k Optimal
// Sequenced Routes" (Liu, Jin, Yang, Zhou — ICDE 2018, arXiv:1802.08014).
//
// A KOSR query (s, t, C, k) asks for the k cheapest routes from s to t
// that pass through the vertex categories C = ⟨C1, …, Cj⟩ in order (e.g.
// a shopping mall, then a restaurant, then a cinema). Edge weights are
// arbitrary non-negative costs; the triangle inequality is not assumed.
//
// # Quick start
//
//	g := kosr.Figure1()                     // the paper's example graph
//	sys := kosr.NewSystem(g)                // builds the 2-hop label indexes
//	s, _ := g.VertexByName("s")
//	t, _ := g.VertexByName("t")
//	ma, _ := g.CategoryByName("MA")
//	re, _ := g.CategoryByName("RE")
//	ci, _ := g.CategoryByName("CI")
//	res, _ := sys.Do(ctx, kosr.Request{
//		Source: s, Target: t, Categories: []kosr.Category{ma, re, ci}, K: 3,
//	})
//	// res.Routes[0].Cost == 20, …[1].Cost == 21, …[2].Cost == 22
//
// Every query enters the system as a Request answered by System.Do (all
// routes at once) or System.DoStream (routes one at a time, lazily).
// Both honour context cancellation: an abandoned request aborts its
// in-flight search within one engine check interval. The default solver
// is StarKOSR (the paper's fastest method); Request fields select
// PruningKOSR, the KPNE baseline, Dijkstra-based nearest-neighbour
// discovery, the Section IV-C variants, and the search budgets.
//
// A System serves queries from an immutable, epoch-versioned Snapshot
// published through an atomic pointer, so the Section IV-C dynamic
// updates (System.Apply: edge insertions, category changes) are safe
// under live traffic: queries pin the snapshot they start on, the
// serialized updater publishes a copy-on-write clone with Epoch+1, and
// result caches key on the epoch (Request.IndexEpoch) instead of being
// purged.
package kosr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/faultinject"
	"repro/internal/flat"
	"repro/internal/graph"
	"repro/internal/invindex"
	"repro/internal/label"
	"repro/internal/store"
)

// StoreKind names the index backing a snapshot serves from; see
// internal/store. Servers report it in /health.
type StoreKind = store.Kind

// The index backings.
const (
	// StoreMemory: heap-resident indexes (built, or legacy-loaded).
	StoreMemory = store.KindMemory
	// StoreMmap: a flat index file mapped read-only, served zero-copy.
	StoreMmap = store.KindMmap
	// StoreDisk: the Section IV-C SK-DB store, read per query.
	StoreDisk = store.KindDisk
)

// Re-exported graph types: the full graph API (builders, IO, categories)
// lives on these types.
type (
	// Graph is a directed weighted graph with vertex categories.
	Graph = graph.Graph
	// Builder accumulates vertices, edges, and categories.
	Builder = graph.Builder
	// Vertex identifies a vertex (dense integers in [0, N)).
	Vertex = graph.Vertex
	// Category identifies a vertex category.
	Category = graph.Category
	// Weight is a non-negative edge or path cost.
	Weight = graph.Weight

	// Query is a KOSR query (s, t, C, k).
	Query = core.Query
	// Route is a witness with its cost.
	Route = core.Route
	// Stats reports search statistics (examined routes, NN queries,
	// time breakdown).
	Stats = core.Stats
	// Method selects the route search algorithm.
	Method = core.Method
	// VariantQuery is a KOSR query with the Section IV-C variants:
	// optional source, optional destination, per-category filters.
	VariantQuery = core.VariantQuery
	// Filters restricts categories to preferred vertices.
	Filters = core.Filters
)

// The route search algorithms.
const (
	// KPNE is the baseline (Algorithm 1 extended to top-k).
	KPNE = core.MethodKPNE
	// PruningKOSR is the dominance-based algorithm (Algorithm 2).
	PruningKOSR = core.MethodPK
	// StarKOSR is the A*-style algorithm (Section IV-B); the default.
	StarKOSR = core.MethodSK
)

// NewBuilder returns a graph builder for n vertices.
func NewBuilder(n int, directed bool) *Builder { return graph.NewBuilder(n, directed) }

// ReadGraph parses a graph in the text format produced by Graph.WriteTo.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// ReadDIMACS parses a road network in the 9th DIMACS Challenge
// shortest-path format (the distribution format of the paper's COL and
// FLA datasets). Categories must be assigned separately.
func ReadDIMACS(r io.Reader) (*Graph, error) { return graph.ReadDIMACS(r) }

// Figure1 returns the running-example graph of the paper.
func Figure1() *Graph { return graph.Figure1() }

// Options tunes a query made through the deprecated Solve/SolveVariant/
// Stream entry points. New code should set the same fields on Request.
type Options struct {
	// Method selects the algorithm; the zero value selects StarKOSR.
	Method Method
	// UseDijkstraNN replaces the inverted-label FindNN with incremental
	// Dijkstra searches (the paper's -Dij variants). Works even on a
	// System built with NewSystemWithoutIndex.
	UseDijkstraNN bool
	// MaxExamined, MaxDuration and TimeBreakdown are forwarded to the
	// engine; see the core package documentation.
	MaxExamined   int64
	MaxDuration   time.Duration
	TimeBreakdown bool
}

// ErrBudgetExceeded is returned by the deprecated Solve-family wrappers
// when MaxExamined or MaxDuration tripped before k routes were found.
// System.Do reports the same condition as Result.Truncated instead.
var ErrBudgetExceeded = core.ErrBudgetExceeded

// Request is the single query surface of the system: a KOSR query
// (s, t, C, k), the Section IV-C variant switches, the algorithm
// selection, and the search budgets — everything that used to be spread
// across Query, VariantQuery and Options. Answer it with System.Do or
// System.DoStream.
type Request struct {
	// Source is the start vertex; ignored when NoSource is set (the
	// route may then start at any vertex of the first category).
	Source Vertex
	// Target is the destination; ignored when NoTarget is set (the
	// route then ends at the last category).
	Target Vertex
	// Categories is the category sequence C = ⟨C1, …, Cj⟩ that feasible
	// routes must visit in order.
	Categories []Category
	// K is the number of routes Do returns. DoStream treats K as an
	// optional cap: zero streams until the witness space is exhausted.
	K int

	// NoSource and NoTarget select the Section IV-C variants. StarKOSR
	// degrades to PruningKOSR when NoTarget disables the A* estimate.
	NoSource bool
	NoTarget bool
	// Filters restricts categories to preferred vertices (the paper's
	// "Italian restaurants" example). Requests with filters are not
	// cacheable — see CanonicalKey.
	Filters Filters

	// Method selects the algorithm; the zero value selects StarKOSR.
	Method Method
	// UseDijkstraNN replaces the inverted-label FindNN with incremental
	// Dijkstra searches (the paper's -Dij variants).
	UseDijkstraNN bool

	// MaxExamined aborts the search after this many examined routes
	// (0 = unlimited); Do reports the trip as Result.Truncated.
	MaxExamined int64
	// MaxDuration aborts the search after this much wall-clock time
	// (0 = unlimited). Prefer a context deadline where possible; both
	// are honoured.
	MaxDuration time.Duration
	// TimeBreakdown enables the Table X wall-clock attribution in
	// Result.Stats; it adds timer overhead.
	TimeBreakdown bool

	// WarmCategories is a performance hint: the distinct categories the
	// caller expects to query soon on the same scratch (typically the
	// union across one server batch). The engine pre-allocates that many
	// NN iterator rows before the search starts, so a batch of queries
	// sharing categories grows each pooled scratch's rows once instead
	// of once per query. The hint never changes the routes — it is
	// deliberately excluded from CanonicalKey.
	WarmCategories []Category

	// IndexEpoch optionally records the Snapshot.Epoch the request is
	// answered against. It never influences the search — Do always
	// answers from the snapshot it pinned — but CanonicalKey folds it
	// into the cache key, so results computed on different index
	// versions can never collide in a result cache: entries keyed to a
	// superseded epoch simply stop being requested and age out of the
	// LRU (no global purge on update). Servers set it from the snapshot
	// they pin; leave it zero when no caching is involved.
	IndexEpoch uint64
}

// variant reports whether the request needs the Section IV-C engine.
func (r Request) variant() bool {
	return r.NoSource || r.NoTarget || len(r.Filters) > 0
}

func (r Request) coreOptions() core.Options {
	return core.Options{
		Method:         r.Method,
		MaxExamined:    r.MaxExamined,
		MaxDuration:    r.MaxDuration,
		TimeBreakdown:  r.TimeBreakdown,
		PrewarmCatRows: r.prewarmCatRows(),
	}
}

// maxWarmCategories caps the batch warm hint: each warmed row is an
// O(|V|) allocation retained by the pooled scratch, so an adversarial
// batch naming hundreds of categories must not pin hundreds of rows.
const maxWarmCategories = 16

// prewarmCatRows reduces the WarmCategories hint to a row count: the
// number of distinct hinted categories, capped at maxWarmCategories.
func (r Request) prewarmCatRows() int {
	if len(r.WarmCategories) == 0 {
		return 0
	}
	n := 0
	var seen [maxWarmCategories]Category
outer:
	for _, c := range r.WarmCategories {
		for _, s := range seen[:n] {
			if s == c {
				continue outer
			}
		}
		if n == maxWarmCategories {
			break
		}
		seen[n] = c
		n++
	}
	return n
}

// CanonicalKey renders the request as a canonical string so that any
// two requests answered by the same search share one key — the cache
// key of the server's result cache. ok is false when the request cannot
// be keyed (per-category filter functions have no canonical form);
// such requests must bypass result caches.
//
// The key covers everything that changes the routes or the truncation
// behaviour (index epoch, method, NN backend, endpoints, variant
// switches, category sequence, k, MaxExamined). It deliberately
// excludes MaxDuration and TimeBreakdown: wall-clock budgets are
// nondeterministic, so cache users must only store results whose
// truncation (if any) came from the deterministic MaxExamined budget —
// those are byte-identical regardless of either field. WarmCategories is
// excluded too: it is a pure performance hint and never changes the
// answer.
func (r Request) CanonicalKey() (key string, ok bool) {
	if len(r.Filters) > 0 {
		return "", false
	}
	var b strings.Builder
	b.Grow(64)
	b.WriteString("v")
	b.WriteString(strconv.FormatUint(r.IndexEpoch, 10))
	b.WriteString("|m")
	b.WriteString(strconv.Itoa(int(r.Method)))
	if r.UseDijkstraNN {
		b.WriteString("d")
	}
	b.WriteString("|s")
	if r.NoSource {
		b.WriteString("*")
	} else {
		b.WriteString(strconv.Itoa(int(r.Source)))
	}
	b.WriteString("|t")
	if r.NoTarget {
		b.WriteString("*")
	} else {
		b.WriteString(strconv.Itoa(int(r.Target)))
	}
	b.WriteString("|k")
	b.WriteString(strconv.Itoa(r.K))
	b.WriteString("|x")
	b.WriteString(strconv.FormatInt(r.MaxExamined, 10))
	b.WriteString("|c")
	for i, c := range r.Categories {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(strconv.Itoa(int(c)))
	}
	return b.String(), true
}

// Result is a Do answer: the routes, the search statistics, and whether
// a budget truncated the search before K routes were found.
type Result struct {
	// Routes holds up to K routes in nondecreasing cost order; fewer
	// routes mean fewer feasible routes exist (or Truncated is set).
	Routes []Route
	// Stats reports the search effort (examined routes, NN queries,
	// time breakdown when requested).
	Stats *Stats
	// Truncated marks that MaxExamined or MaxDuration tripped first;
	// Routes holds the (possibly empty) partial result.
	Truncated bool
	// TruncatedByExamined narrows Truncated: the trip was specifically
	// the examined-routes budget, which is deterministic — rerunning
	// the same request with the same MaxExamined truncates identically.
	// Result caches may therefore store such partial answers (keyed on
	// the budget, which CanonicalKey already covers), unlike wall-clock
	// truncations.
	TruncatedByExamined bool
}

// Snapshot is one immutable, atomically-published version of a System's
// index: the base graph, the 2-hop label index, the inverted label
// index, the frozen dynamic overlays, and the query providers (each
// owning a scratch pool) that answer from them. Do and DoStream pin the
// snapshot they start on for the query's whole lifetime, so a
// concurrent update can never change the data a running search reads;
// System.Apply publishes a new snapshot with Epoch+1 instead of
// mutating this one. The exported fields are read-only.
type Snapshot struct {
	// Epoch is the index version: 1 for the freshly built index, +1 per
	// applied update batch. Servers fold it into result-cache keys (see
	// Request.IndexEpoch), which is what invalidates cached answers
	// after an update without any global purge.
	Epoch uint64
	// Graph is the immutable base graph. Dynamically inserted edges
	// live in the label index and the edge overlay, not here.
	Graph *Graph
	// Labels is this version's 2-hop label index (nil when the system
	// was created with NewSystemWithoutIndex).
	Labels *label.Index
	// Inverted is this version's per-category inverted label index.
	Inverted *invindex.Index
	// Backing names the index store this snapshot chain was opened
	// from (memory, mmap). An mmap-backed chain serves label and
	// inverted entries straight out of the mapped flat file; epochs
	// cloned from it keep the kind — their untouched pages still
	// resolve into the mapping.
	Backing StoreKind

	// dyn is the frozen dynamic-edge overlay holding every edge
	// inserted up to this epoch; the updater traverses it when resuming
	// pruned searches for later insertions. Queries never read it — the
	// labels already cover the extra edges.
	dyn *graph.Dynamic
	// catAdd/catDel record the dynamic category-membership changes
	// applied so far on top of the base graph, so invindex.Refresh can
	// keep the inverted lists of recategorized vertices exact across
	// subsequent edge insertions.
	catAdd map[Vertex][]Category
	catDel map[Vertex][]Category

	// The long-lived providers of this version. Each owns the
	// sync.Pool of query scratches; they are created with the snapshot
	// so the query path never takes a lock to look one up.
	labelProv *core.LabelProvider
	dijProv   *core.DijkstraProvider

	// expandOnce/expandGraph lazily materialize base graph + edge
	// overlay for witness expansion, so expanded walks stay consistent
	// with label distances after dynamic edge insertions. Built at most
	// once per snapshot, and only when expansion is actually requested
	// on a snapshot that carries dynamic edges.
	expandOnce  sync.Once
	expandGraph *graph.Graph

	// vertsCache memoizes VerticesOf per category (Category → []Vertex).
	// The overlay merge scans the whole catAdd/catDel maps, so without
	// the cache every no-source variant query would pay work
	// proportional to the snapshot's entire update history; the
	// snapshot is immutable once queried, so the first result per
	// category is final.
	vertsCache sync.Map
}

func newSnapshot(epoch uint64, backing StoreKind, g *Graph, lab *label.Index, inv *invindex.Index,
	dyn *graph.Dynamic, catAdd, catDel map[Vertex][]Category) *Snapshot {
	sn := &Snapshot{
		Epoch: epoch, Graph: g, Labels: lab, Inverted: inv, Backing: backing,
		dyn: dyn, catAdd: catAdd, catDel: catDel,
		dijProv: &core.DijkstraProvider{Graph: g},
	}
	if lab != nil {
		sn.labelProv = &core.LabelProvider{Graph: g, Labels: lab, Inv: inv}
	}
	return sn
}

// wireCounters points the snapshot's providers at the owning System's
// shared scratch-accounting counters. Called before the snapshot is
// published (constructors and the serialized updater), so it never
// races a query.
func (sn *Snapshot) wireCounters(fwd *atomic.Uint64, out *atomic.Int64) {
	sn.dijProv.Forwarded, sn.dijProv.Outstanding = fwd, out
	if sn.labelProv != nil {
		sn.labelProv.Forwarded, sn.labelProv.Outstanding = fwd, out
	}
}

// PageResidency reports the snapshot's paged index structures' page
// residency: shared pages are borrowed from an ancestor epoch (one
// physical copy serves several snapshots), owned pages were copied on
// write and belong to this snapshot's chain. Owned growth across a
// long-lived epoch chain is the memory-amplification signal dynamic
// updates pay for isolation.
func (sn *Snapshot) PageResidency() (shared, owned int) {
	if sn.Labels != nil {
		s, o := sn.Labels.Residency()
		shared, owned = shared+s, owned+o
	}
	if sn.Inverted != nil {
		s, o := sn.Inverted.Residency()
		shared, owned = shared+s, owned+o
	}
	if sn.dyn != nil {
		s, o := sn.dyn.Residency()
		shared, owned = shared+s, owned+o
	}
	return shared, owned
}

// provider picks the snapshot's provider for the request: both exist
// for the snapshot's lifetime, so this is a branch, not a lock.
func (sn *Snapshot) provider(useDijkstraNN bool) core.Provider {
	if useDijkstraNN || sn.labelProv == nil {
		return sn.dijProv
	}
	return sn.labelProv
}

// NumCategories returns the size of this snapshot's effective category
// id space: the base graph's static count, extended by any ids grown
// dynamically through OpAddCategory. Requests may use any id below it;
// an id with no member vertices is simply an empty category (no
// feasible routes).
func (sn *Snapshot) NumCategories() int {
	n := sn.Graph.NumCategories()
	if sn.Inverted != nil {
		if nc := sn.Inverted.NumCategories(); nc > n {
			n = nc
		}
	}
	return n
}

// CategoriesOf returns the effective category memberships of v at this
// epoch: the base graph's, minus dynamically removed ones, plus
// dynamically added ones.
func (sn *Snapshot) CategoriesOf(v Vertex) []Category {
	base := sn.Graph.Categories(v)
	add, del := sn.catAdd[v], sn.catDel[v]
	if len(add) == 0 && len(del) == 0 {
		return base
	}
	out := make([]Category, 0, len(base)+len(add))
	for _, c := range base {
		if !containsCat(del, c) {
			out = append(out, c)
		}
	}
	for _, c := range add {
		if !containsCat(out, c) {
			out = append(out, c)
		}
	}
	return out
}

func containsCat(cs []Category, c Category) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

// VerticesOf returns the vertices belonging to category c at this
// epoch, ascending: the base graph's V_c minus dynamically removed
// members, plus dynamically added ones. When no dynamic category change
// touches c the base graph's list is returned as-is (shared; do not
// modify). No-source variant queries seed their roots from this view,
// so a category granted to a vertex at run time widens the variant root
// set exactly like a native membership.
func (sn *Snapshot) VerticesOf(c Category) []Vertex {
	base := sn.Graph.VerticesOf(c)
	if len(sn.catAdd) == 0 && len(sn.catDel) == 0 {
		return base
	}
	if cached, ok := sn.vertsCache.Load(c); ok {
		return cached.([]Vertex)
	}
	out := sn.mergeVerticesOf(c, base)
	sn.vertsCache.Store(c, out)
	return out
}

// mergeVerticesOf computes the overlay merge behind VerticesOf.
func (sn *Snapshot) mergeVerticesOf(c Category, base []Vertex) []Vertex {
	var add, del []Vertex
	for v, cats := range sn.catAdd {
		if containsCat(cats, c) {
			add = append(add, v)
		}
	}
	for v, cats := range sn.catDel {
		if containsCat(cats, c) {
			del = append(del, v)
		}
	}
	if len(add) == 0 && len(del) == 0 {
		return base
	}
	out := make([]Vertex, 0, len(base)+len(add))
	for _, v := range base {
		if !containsVertex(del, v) {
			out = append(out, v)
		}
	}
	out = append(out, add...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func containsVertex(vs []Vertex, v Vertex) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

// System bundles a graph with the indexes needed to answer queries and
// absorb dynamic updates under live traffic. Reads are wait-free: the
// index lives in an immutable Snapshot published through an atomic
// pointer, every query pins the snapshot it starts on, and concurrent
// queries check their mutable search state out of per-provider scratch
// pools. Share one System across workers — per-query Systems defeat
// the pools.
//
// The Section IV-C dynamic updates (Apply, or the AddVertexCategory /
// InsertEdge wrappers) are safe against in-flight queries: one
// serialized updater applies the incremental label and inverted-index
// deltas to a copy-on-write clone, bumps the epoch, and publishes the
// clone atomically. Queries that pinned the old snapshot finish on it;
// queries arriving after publication see the new one.
type System struct {
	// Graph is the immutable base graph shared by every snapshot.
	Graph *Graph

	snap atomic.Pointer[Snapshot]
	// updateMu serializes Apply: one updater at a time clones the
	// current snapshot, applies its batch, and publishes. Queries never
	// take it.
	updateMu sync.Mutex

	// st is the index store the system was opened from, when any:
	// NewSystemFromStore keeps it so Close can release the backing
	// (unmap the flat file). Systems assembled from in-memory parts
	// leave it nil.
	st store.IndexStore

	// Updater-owned state, guarded by updateMu: the dense label-repair
	// scratch and the inverted-index refresh scratch are checked out
	// once per Apply batch and reused across epochs, so a steady-state
	// update allocates only the fresh COW lists it writes. arcBuf
	// batches consecutive edge insertions of one Apply into a single
	// InsertEdgeBatch call. repairWorkers caps the parallel repair
	// stage (0 = GOMAXPROCS at Apply time; see SetRepairWorkers).
	upScratch      *label.UpdateScratch
	refreshScratch invindex.RefreshScratch
	arcBuf         []label.NewArc
	repairWorkers  int

	// Cumulative Apply cost counters (see ApplyStats). Written only by
	// the serialized updater; read concurrently by /health.
	applyBatches      atomic.Uint64
	applyUpdates      atomic.Uint64
	applyPagesCopied  atomic.Uint64
	applyBytes        atomic.Uint64
	applyHubRepairs   atomic.Uint64
	applyRepairSeeds  atomic.Uint64
	applySeedsSkipped atomic.Uint64
	applyRepairReruns atomic.Uint64
	scratchCarryover  atomic.Uint64
	// scratchForwarded / scratchOutstanding are shared by every epoch's
	// providers (see core provider Forwarded/Outstanding): releases that
	// chase a publication, and scratches currently checked out.
	scratchForwarded   atomic.Uint64
	scratchOutstanding atomic.Int64
}

// ErrInvalidUpdate marks an Apply failure caused by the update batch
// itself (out-of-range ids, bad weights, unknown ops, no label index):
// retrying the same batch fails identically. Test with errors.Is;
// failures NOT matching it may be transient and worth a retry.
var ErrInvalidUpdate = errors.New("kosr: invalid update")

// invalidUpdateError keeps the historical message text while matching
// ErrInvalidUpdate under errors.Is.
type invalidUpdateError struct{ msg string }

func (e *invalidUpdateError) Error() string { return e.msg }

func (e *invalidUpdateError) Is(target error) bool { return target == ErrInvalidUpdate }

func invalidUpdatef(format string, args ...any) error {
	return &invalidUpdateError{msg: fmt.Sprintf(format, args...)}
}

// ApplyStats reports the cumulative cost of every Apply since the
// System was built. PagesCopied and ApplyBytes count the copy-on-write
// work of the paged index vectors (label headers, inverted lists, edge
// overlays — page copies plus the page-table copies of each epoch's
// clones), which is the structural cost of publishing an epoch: with
// chunked pages it is O(pages touched) per update, not O(|V|).
// ScratchCarryover counts pooled query scratches handed from a
// superseded snapshot's providers to the next — warm-path publication;
// each carried scratch spares the first post-update queries their
// cold O(|V|) table growth.
type ApplyStats struct {
	// Batches and Updates count Apply calls and the mutations they
	// carried.
	Batches uint64
	Updates uint64
	// PagesCopied and ApplyBytes account the copy-on-write page work of
	// all applied batches.
	PagesCopied uint64
	ApplyBytes  uint64
	// HubRepairs counts the deduplicated (hub, direction) label-repair
	// searches run by edge insertions; RepairSeeds counts the raw seed
	// entries before batch dedup and filtering, and SeedsSkipped the
	// seeds dropped because the pre-batch labels already covered them
	// (their repairs would have settled nothing). RepairReruns counts
	// parallel speculative repairs invalidated by cross-hub conflicts
	// and re-run serially at commit — always 0 with serial repair.
	HubRepairs   uint64
	RepairSeeds  uint64
	SeedsSkipped uint64
	RepairReruns uint64
	// ScratchCarryover counts scratches moved across epochs.
	ScratchCarryover uint64
	// ScratchForwarded counts scratch releases that arrived at a
	// superseded epoch's provider and were redirected to the live pool.
	// Carryover only sees scratches at rest at publication time; under
	// saturation most are checked out then, and this counter is how
	// they are accounted when they come home.
	ScratchForwarded uint64
}

// ApplyStats returns the cumulative dynamic-update cost counters.
func (s *System) ApplyStats() ApplyStats {
	return ApplyStats{
		Batches:          s.applyBatches.Load(),
		Updates:          s.applyUpdates.Load(),
		PagesCopied:      s.applyPagesCopied.Load(),
		ApplyBytes:       s.applyBytes.Load(),
		HubRepairs:       s.applyHubRepairs.Load(),
		RepairSeeds:      s.applyRepairSeeds.Load(),
		SeedsSkipped:     s.applySeedsSkipped.Load(),
		RepairReruns:     s.applyRepairReruns.Load(),
		ScratchCarryover: s.scratchCarryover.Load(),
		ScratchForwarded: s.scratchForwarded.Load(),
	}
}

// ScratchesInFlight reports how many pooled query scratches are
// currently checked out by running queries, across every epoch's
// providers. It returns to zero when traffic drains; a persistent
// nonzero value at idle means a release was lost (a leak).
func (s *System) ScratchesInFlight() int64 { return s.scratchOutstanding.Load() }

// NewSystem builds the 2-hop label index and the inverted label index
// for g. Preprocessing is O(|V|) pruned Dijkstra searches; see
// Labels().Stats for the resulting sizes.
func NewSystem(g *Graph) *System {
	lab := label.Build(g)
	return NewSystemFromParts(g, lab, invindex.Build(g, lab))
}

// NewSystemFromParts assembles a System from a prebuilt label index and
// inverted label index (as produced by label.Build and invindex.Build,
// or loaded from disk). The indexes become epoch 1 of the system; the
// caller must not mutate them afterwards.
func NewSystemFromParts(g *Graph, lab *label.Index, inv *invindex.Index) *System {
	s := &System{Graph: g}
	sn := newSnapshot(1, StoreMemory, g, lab, inv, graph.NewDynamic(g), nil, nil)
	sn.wireCounters(&s.scratchForwarded, &s.scratchOutstanding)
	s.snap.Store(sn)
	return s
}

// NewSystemFromStore assembles a System over a resident index store:
// the store's index pair becomes epoch 1 and every snapshot records the
// store's kind (see Snapshot.Backing). The system takes ownership of
// the store — Close releases it. Per-query stores (StoreDisk) have no
// resident pair and are rejected; serve those through DiskSystem.
func NewSystemFromStore(g *Graph, st store.IndexStore) (*System, error) {
	if err := store.Validate(st, g); err != nil {
		return nil, err
	}
	lab, inv, ok := st.Resident()
	if !ok {
		return nil, fmt.Errorf("kosr: %s store has no resident index; use DiskSystem", st.Kind())
	}
	s := &System{Graph: g, st: st}
	sn := newSnapshot(1, st.Kind(), g, lab, inv, graph.NewDynamic(g), nil, nil)
	sn.wireCounters(&s.scratchForwarded, &s.scratchOutstanding)
	s.snap.Store(sn)
	return s, nil
}

// OpenFlatSystem maps the flat index file at path (written by
// SaveFlatIndex or `kosr pack`) and serves queries zero-copy from the
// mapping: no parse step, no entry materialization — cold start is the
// mmap plus one checksum pass. Dynamic updates work as usual; touched
// pages are copied on write, untouched ones keep resolving into the
// mapping. Close the returned System when done to release it.
func OpenFlatSystem(g *Graph, path string) (*System, error) {
	st, err := store.OpenMmap(path)
	if err != nil {
		return nil, err
	}
	sys, err := NewSystemFromStore(g, st)
	if err != nil {
		st.Close()
		return nil, err
	}
	return sys, nil
}

// StoreKind reports the index backing the current snapshot serves
// from.
func (s *System) StoreKind() StoreKind { return s.Snapshot().Backing }

// Close releases the index store the system was opened from (unmaps a
// flat file). Only call it when no query is in flight and no snapshot
// of this system will be used again; systems assembled from in-memory
// parts have nothing to release.
func (s *System) Close() error {
	if s.st == nil {
		return nil
	}
	return s.st.Close()
}

// Default Prewarm table sizing: typical KOSR requests carry a handful
// of categories (the paper evaluates |C| ≤ 5) and dominance levels one
// past that, so four levels and three category rows cover the common
// case without pinning worst-case footprints.
const (
	prewarmDomLevels = 4
	prewarmCatRows   = 3
)

// Prewarm stocks the current snapshot's scratch pool with n fully
// pre-sized query scratches (n ≤ 0 is a no-op). A scratch's dense
// tables normally grow lazily on first touch, so the first query per
// server worker after a cold boot pays a burst of O(|V|) allocations;
// prewarming moves that work to startup. Servers call it with their
// worker count before accepting traffic.
//
// The updater's label-repair scratch is warmed too (when the system
// has a label index): its dense per-worker search tables otherwise
// grow on the first Apply, delaying the first published epoch.
func (s *System) Prewarm(n int) {
	if n <= 0 {
		return
	}
	sn := s.Snapshot()
	if sn.Labels != nil {
		s.updateMu.Lock()
		s.updaterScratch().Prewarm(s.applyWorkersLocked())
		s.updateMu.Unlock()
	}
	if sn.labelProv != nil {
		sn.labelProv.Prewarm(n, prewarmDomLevels, prewarmCatRows)
		return
	}
	sn.dijProv.Prewarm(n, prewarmDomLevels, prewarmCatRows)
}

// NewSystemWithoutIndex returns a System that answers every query with
// Dijkstra-based nearest-neighbour discovery (no preprocessing).
// Dynamic updates require a label index and are rejected.
func NewSystemWithoutIndex(g *Graph) *System {
	s := &System{Graph: g}
	sn := newSnapshot(1, StoreMemory, g, nil, nil, graph.NewDynamic(g), nil, nil)
	sn.wireCounters(&s.scratchForwarded, &s.scratchOutstanding)
	s.snap.Store(sn)
	return s
}

// Snapshot returns the current published index version — a single
// wait-free atomic load. Use it to pin one version across several
// operations (a batch of queries, a query plus its cache-key epoch):
// methods on the returned Snapshot always answer from exactly that
// version, while System.Do re-pins the newest version per call.
func (s *System) Snapshot() *Snapshot { return s.snap.Load() }

// Epoch returns the current index version number (1 = as built;
// incremented by every applied update batch).
func (s *System) Epoch() uint64 { return s.Snapshot().Epoch }

// Labels returns the current snapshot's 2-hop label index (nil when
// the system was created with NewSystemWithoutIndex).
func (s *System) Labels() *label.Index { return s.Snapshot().Labels }

// Inverted returns the current snapshot's inverted label index.
func (s *System) Inverted() *invindex.Index { return s.Snapshot().Inverted }

// Do answers a Request on this snapshot: up to req.K routes in
// nondecreasing cost order, with the search statistics. See System.Do
// for the budget and cancellation contract; answering on an explicitly
// pinned snapshot additionally guarantees that a concurrent
// System.Apply cannot move the index under a multi-query sequence.
func (sn *Snapshot) Do(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		//lint:ignore ctxfirst documented nil-ctx tolerance for callers migrating off the deprecated wrappers
		ctx = context.Background()
	}
	prov := sn.provider(req.UseDijkstraNN)
	opts := req.coreOptions()
	opts.NumCategories = sn.NumCategories()
	var routes []Route
	var st *Stats
	var err error
	if req.variant() {
		opts.VerticesOf = sn.VerticesOf // dynamic category changes widen variant roots
		routes, st, err = core.SolveVariant(ctx, sn.Graph, VariantQuery{
			Source: req.Source, NoSource: req.NoSource,
			Target: req.Target, NoTarget: req.NoTarget,
			Categories: req.Categories, K: req.K,
			Filters: req.Filters,
		}, prov, opts)
	} else {
		routes, st, err = core.Solve(ctx, sn.Graph,
			Query{Source: req.Source, Target: req.Target, Categories: req.Categories, K: req.K},
			prov, opts)
	}
	if errors.Is(err, core.ErrBudgetExceeded) {
		return &Result{Routes: routes, Stats: st, Truncated: true,
			TruncatedByExamined: errors.Is(err, core.ErrExaminedExceeded)}, nil
	}
	if err != nil {
		return nil, err
	}
	return &Result{Routes: routes, Stats: st}, nil
}

// Do answers a Request: up to req.K routes in nondecreasing cost order,
// with the search statistics. A search that trips req.MaxExamined or
// req.MaxDuration is not an error — the routes found so far come back
// with Result.Truncated set, so callers can degrade gracefully.
//
// Cancelling ctx aborts an in-flight search within one engine pop-loop
// check interval, returns the query scratch to the provider's pool, and
// reports ctx.Err(). A ctx deadline, by contrast, acts as a wall-clock
// budget like MaxDuration: expiry yields a Truncated result with the
// routes found so far. A nil ctx behaves like context.Background().
//
// Do pins the current Snapshot for the query's lifetime — one wait-free
// atomic load, no lock — so concurrent Apply calls never change the
// index mid-search.
func (s *System) Do(ctx context.Context, req Request) (*Result, error) {
	return s.Snapshot().Do(ctx, req)
}

// DoStream answers a Request progressively: the returned iterator
// yields routes one at a time in nondecreasing cost order, computing
// each only when asked for — PNE-family searches are inherently
// progressive, so the (i+1)-th route costs only the extra expansion
// beyond the i-th. req.K caps the stream when positive; zero streams
// until the witness space is exhausted.
//
// The search state is released as soon as the iteration ends — by
// exhaustion, by breaking out of the range loop, or by ctx being
// cancelled (the pending step then yields ctx.Err()). A budget trip
// yields ErrBudgetExceeded as the final element.
func (s *System) DoStream(ctx context.Context, req Request) iter.Seq2[Route, error] {
	return s.Snapshot().DoStream(ctx, req)
}

// DoStream answers a Request progressively on this snapshot; see
// System.DoStream. The whole stream reads the pinned version even when
// updates are published mid-iteration.
func (sn *Snapshot) DoStream(ctx context.Context, req Request) iter.Seq2[Route, error] {
	return func(yield func(Route, error) bool) {
		sr, err := sn.openSearcher(ctx, req)
		if err != nil {
			yield(Route{}, err)
			return
		}
		defer sr.Close()
		for n := 0; req.K <= 0 || n < req.K; n++ {
			r, ok, err := sr.Next()
			if err != nil {
				yield(Route{}, err)
				return
			}
			if !ok || !yield(r, nil) {
				return
			}
		}
	}
}

// openSearcher builds the progressive searcher behind DoStream and the
// deprecated Stream entry point.
func (sn *Snapshot) openSearcher(ctx context.Context, req Request) (*core.Searcher, error) {
	if ctx == nil {
		//lint:ignore ctxfirst documented nil-ctx tolerance for callers migrating off the deprecated wrappers
		ctx = context.Background()
	}
	prov := sn.provider(req.UseDijkstraNN)
	opts := req.coreOptions()
	opts.NumCategories = sn.NumCategories()
	if req.variant() {
		opts.VerticesOf = sn.VerticesOf // dynamic category changes widen variant roots
		return core.NewVariantSearcher(ctx, sn.Graph, VariantQuery{
			Source: req.Source, NoSource: req.NoSource,
			Target: req.Target, NoTarget: req.NoTarget,
			Categories: req.Categories, K: req.K,
			Filters: req.Filters,
		}, prov, opts)
	}
	return core.NewSearcher(ctx, sn.Graph,
		Query{Source: req.Source, Target: req.Target, Categories: req.Categories, K: req.K},
		prov, opts)
}

// TopK answers the KOSR query (src, dst, cats, k) with StarKOSR. Fewer
// than k routes are returned when fewer feasible routes exist.
//
// Deprecated: use Do, which adds cancellation.
func (s *System) TopK(src, dst Vertex, cats []Category, k int) ([]Route, error) {
	routes, _, err := s.Solve(Query{Source: src, Target: dst, Categories: cats, K: k}, Options{})
	return routes, err
}

// Solve answers a query with full control over the algorithm and limits.
//
// Deprecated: use Do. Solve is a thin wrapper that rebuilds the old
// contract (routes + ErrBudgetExceeded on truncation) from a Result.
func (s *System) Solve(q Query, opt Options) ([]Route, *Stats, error) {
	return s.doCompat(Request{
		Source: q.Source, Target: q.Target, Categories: q.Categories, K: q.K,
		Method: opt.Method, UseDijkstraNN: opt.UseDijkstraNN,
		MaxExamined: opt.MaxExamined, MaxDuration: opt.MaxDuration,
		TimeBreakdown: opt.TimeBreakdown,
	})
}

// SolveVariant answers a query variant of Section IV-C: no required
// source (routes start at any vertex of the first category), no required
// destination (routes end at the last category; StarKOSR degrades to
// PruningKOSR), and per-category preference filters.
//
// Deprecated: use Do with the NoSource/NoTarget/Filters fields set.
func (s *System) SolveVariant(q VariantQuery, opt Options) ([]Route, *Stats, error) {
	return s.doCompat(Request{
		Source: q.Source, NoSource: q.NoSource,
		Target: q.Target, NoTarget: q.NoTarget,
		Categories: q.Categories, K: q.K, Filters: q.Filters,
		Method: opt.Method, UseDijkstraNN: opt.UseDijkstraNN,
		MaxExamined: opt.MaxExamined, MaxDuration: opt.MaxDuration,
		TimeBreakdown: opt.TimeBreakdown,
	})
}

// doCompat adapts Do back to the historical (routes, stats, error)
// contract of the deprecated wrappers.
func (s *System) doCompat(req Request) ([]Route, *Stats, error) {
	//lint:ignore ctxfirst the deprecated wrappers predate cancellation; their contract is an uncancellable call
	res, err := s.Do(context.Background(), req)
	if err != nil {
		return nil, nil, err
	}
	if res.Truncated {
		return res.Routes, res.Stats, core.ErrBudgetExceeded
	}
	return res.Routes, res.Stats, nil
}

// Stream starts a progressive search that yields routes one at a time in
// nondecreasing cost order (q.K is ignored): call Next on the returned
// Searcher until ok is false.
//
// Deprecated: use DoStream, which adds cancellation and releases the
// search state automatically when the iteration ends.
func (s *System) Stream(q Query, opt Options) (*core.Searcher, error) {
	//lint:ignore ctxfirst the deprecated wrappers predate cancellation; their contract is an uncancellable call
	return s.Snapshot().openSearcher(context.Background(), Request{
		Source: q.Source, Target: q.Target, Categories: q.Categories,
		Method: opt.Method, UseDijkstraNN: opt.UseDijkstraNN,
		MaxExamined: opt.MaxExamined, MaxDuration: opt.MaxDuration,
		TimeBreakdown: opt.TimeBreakdown,
	})
}

// OptimalRoute answers an OSR query (k = 1). ok is false when no
// feasible route exists.
//
// Deprecated: use Do with K = 1.
func (s *System) OptimalRoute(src, dst Vertex, cats []Category) (Route, bool, error) {
	routes, _, err := s.Solve(Query{Source: src, Target: dst, Categories: cats, K: 1}, Options{})
	if err != nil || len(routes) == 0 {
		return Route{}, false, err
	}
	return routes[0], true, nil
}

// GSP answers an OSR query with the dynamic-programming baseline of Rice
// & Tsotras (the paper's state-of-the-art OSR comparator).
func (s *System) GSP(src, dst Vertex, cats []Category) (Route, bool, error) {
	r, _, ok, err := core.GSP(s.Graph, Query{Source: src, Target: dst, Categories: cats, K: 1})
	return r, ok, err
}

// ExpandWitness expands a witness into an actual route on this
// snapshot's effective graph (base graph plus the edges inserted up to
// this epoch): a vertex walk in which consecutive vertices are joined
// by edges. Returns nil when a leg is unreachable.
func (sn *Snapshot) ExpandWitness(witness []Vertex) []Vertex {
	return core.ExpandWitness(sn.expansionGraph(), witness)
}

// expansionGraph returns the graph witness expansion walks: the base
// graph when no dynamic edges exist, otherwise the overlay
// materialized once per snapshot. Without this, a route whose cost
// uses a dynamically inserted arc would expand into a walk that
// contradicts it.
func (sn *Snapshot) expansionGraph() *Graph {
	if sn.dyn == nil || sn.dyn.NumExtraEdges() == 0 {
		return sn.Graph
	}
	sn.expandOnce.Do(func() {
		g, err := sn.dyn.Rebuild()
		if err != nil {
			g = sn.Graph // unreachable: overlay edges were validated
		}
		sn.expandGraph = g
	})
	return sn.expandGraph
}

// ExpandWitness expands a witness into an actual route: a vertex walk in
// which consecutive vertices are joined by edges. It answers from the
// current snapshot, so dynamically inserted edges participate.
func (s *System) ExpandWitness(witness []Vertex) []Vertex {
	return s.Snapshot().ExpandWitness(witness)
}

// ShortestPath returns the exact shortest-path distance dis(u, v),
// answered from the label index when available.
func (s *System) ShortestPath(u, v Vertex) Weight {
	sn := s.Snapshot()
	if sn.Labels != nil {
		return sn.Labels.Dist(u, v)
	}
	return sn.dijProv.DistTo(v)(u)
}

// UpdateOp names one dynamic-update operation of Section IV-C.
type UpdateOp string

// The update operations accepted by Apply.
const (
	// OpInsertEdge inserts the arc (From, To) with the given Weight — or
	// a cheaper parallel arc, modelling a weight decrease. The edge is
	// folded into the 2-hop labels incrementally (resumed pruned
	// searches) and the inverted label index is refreshed.
	OpInsertEdge UpdateOp = "insert-edge"
	// OpAddCategory registers Category on Vertex in the inverted label
	// index, so subsequent FindNN queries see the new membership.
	OpAddCategory UpdateOp = "add-category"
	// OpRemoveCategory undoes OpAddCategory (or hides a base-graph
	// membership).
	OpRemoveCategory UpdateOp = "remove-category"
)

// MaxDynamicCategoryGrowth bounds how far beyond the graph's static
// category set a dynamic OpAddCategory may extend the id space. The
// inverted index and the engine's per-category tables are dense in the
// maximum id, so an unbounded id would be a memory footgun rather than
// a feature.
const MaxDynamicCategoryGrowth = 1 << 16

// Update is one mutation of an Apply batch.
type Update struct {
	// Op selects the operation; the fields it reads follow.
	Op UpdateOp
	// From, To, Weight describe the new arc for OpInsertEdge.
	From, To Vertex
	Weight   Weight
	// Vertex, Category identify the membership change for
	// OpAddCategory / OpRemoveCategory.
	Vertex   Vertex
	Category Category
}

// Apply atomically applies a batch of dynamic updates (Section IV-C)
// and returns the epoch of the snapshot that now carries them.
//
// Apply is the only writer: batches are serialized, each one validated
// up front (an invalid batch is rejected whole, leaving the published
// snapshot untouched), then applied to a copy-on-write clone of the
// current snapshot. The indexes are chunked into fixed-size pages of
// list headers (internal/pagevec): cloning copies only the page tables
// and a mutation copies only the pages it touches, so an update batch
// costs O(pages touched), never O(|V|) — see ApplyStats for the
// accounting. Publication is one atomic pointer store, and the new
// snapshot's providers inherit the previous epoch's pooled query
// scratches, so the first queries after an update run as warm as
// steady state. Queries in flight finish on the snapshot they pinned,
// queries arriving after Apply returns see the new epoch. Concurrent
// queries are therefore always answered from a consistent index
// version, with no reader-side locking.
//
// Label-based queries observe inserted edges and category changes
// everywhere they matter, including no-source variant requests: the
// snapshot keeps a per-category vertex-list overlay (Snapshot.VerticesOf),
// so a category granted at run time widens the variant root set exactly
// like a native membership. Dijkstra-based queries (UseDijkstraNN) and
// GSP run their searches over the immutable base graph, so they observe
// neither inserted edges nor recategorized nearest neighbours (variant
// roots, which come from the snapshot overlay, are the one exception) —
// rebuild a System from the updated graph for those.
func (s *System) Apply(updates ...Update) (epoch uint64, err error) {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	cur := s.Snapshot()
	if cur.Labels == nil {
		return cur.Epoch, invalidUpdatef("kosr: dynamic updates require a label index")
	}
	if len(updates) == 0 {
		return cur.Epoch, nil
	}
	n := Vertex(s.Graph.NumVertices())
	for i, u := range updates {
		switch u.Op {
		case OpInsertEdge:
			if u.From < 0 || u.From >= n || u.To < 0 || u.To >= n {
				return cur.Epoch, invalidUpdatef("kosr: update %d: edge (%d,%d) out of range [0,%d)", i, u.From, u.To, n)
			}
			if u.Weight < 0 || u.Weight != u.Weight {
				return cur.Epoch, invalidUpdatef("kosr: update %d: invalid weight %v", i, u.Weight)
			}
		case OpAddCategory, OpRemoveCategory:
			if u.Vertex < 0 || u.Vertex >= n {
				return cur.Epoch, invalidUpdatef("kosr: update %d: vertex %d out of range [0,%d)", i, u.Vertex, n)
			}
			// Dynamic categories may extend beyond the graph's static
			// set (the inverted index grows), but the per-category
			// tables are dense in the max id — bound it.
			if maxCat := Category(s.Graph.NumCategories() + MaxDynamicCategoryGrowth); u.Category < 0 || u.Category >= maxCat {
				return cur.Epoch, invalidUpdatef("kosr: update %d: category %d out of range [0,%d)", i, u.Category, maxCat)
			}
		default:
			return cur.Epoch, invalidUpdatef("kosr: update %d: unknown op %q", i, u.Op)
		}
	}
	// Fault-injection point for the chaos tests: a transient
	// post-validation failure, i.e. not ErrInvalidUpdate, so callers'
	// retry/breaker wrappers treat it as retryable.
	if err := faultinject.Error(faultinject.FailApply); err != nil {
		return cur.Epoch, err
	}
	next := cur.cowClone()
	// Edge insertions are folded into batched label repairs: each run of
	// consecutive OpInsertEdge ops lands in the overlay first, then one
	// InsertEdgeBatch repairs every affected (hub, direction) exactly
	// once on the reused dense scratch and the staged Lin changes
	// refresh the inverted index in one coalesced pass. Category ops
	// flush the pending run first, so interleaved batches keep exact
	// sequential semantics.
	us := s.updaterScratch()
	opts := label.RepairOptions{Workers: s.applyWorkersLocked()}
	arcs := s.arcBuf[:0]
	var hubRepairs, repairSeeds, seedsSkipped, repairReruns uint64
	flush := func() {
		if len(arcs) == 0 {
			return
		}
		res := next.Labels.InsertEdgeBatch(next.dyn, arcs, us, opts)
		next.Inverted.RefreshBatch(&s.refreshScratch, next.CategoriesOf, res.Updates)
		hubRepairs += uint64(res.Repairs)
		repairSeeds += uint64(res.Seeds)
		seedsSkipped += uint64(res.SeedsSkipped)
		repairReruns += uint64(res.Reruns)
		arcs = arcs[:0]
	}
	for _, u := range updates {
		switch u.Op {
		case OpInsertEdge:
			if err := next.dyn.AddEdge(u.From, u.To, u.Weight); err != nil {
				continue // unreachable: validated above
			}
			arcs = append(arcs, label.NewArc{From: u.From, To: u.To, W: u.Weight})
			if !next.Graph.Directed() && u.From != u.To {
				// The overlay already added the mirror arc; repair its
				// label direction too.
				arcs = append(arcs, label.NewArc{From: u.To, To: u.From, W: u.Weight})
			}
		case OpAddCategory:
			flush()
			next.addCategory(u.Vertex, u.Category)
		case OpRemoveCategory:
			flush()
			next.removeCategory(u.Vertex, u.Category)
		}
	}
	flush()
	s.arcBuf = arcs[:0]
	// Inherit the scratch pools only now, just before publication:
	// doing it at clone time would leave the still-published snapshot's
	// queries acquiring from emptied pools for the whole (possibly
	// hundreds of ms) mutation phase.
	next.wireCounters(&s.scratchForwarded, &s.scratchOutstanding)
	carried := next.inheritScratches(cur)
	pages, bytes := next.copyStats()
	s.applyBatches.Add(1)
	s.applyUpdates.Add(uint64(len(updates)))
	s.applyPagesCopied.Add(pages)
	s.applyBytes.Add(bytes)
	s.applyHubRepairs.Add(hubRepairs)
	s.applyRepairSeeds.Add(repairSeeds)
	s.applySeedsSkipped.Add(seedsSkipped)
	s.applyRepairReruns.Add(repairReruns)
	s.scratchCarryover.Add(uint64(carried))
	s.snap.Store(next)
	return next.Epoch, nil
}

// copyStats sums the copy-on-write work recorded by this snapshot's
// paged index structures since they were cloned — i.e. the structural
// cost of the batch that built this snapshot. Only the serialized
// updater calls it, before publication.
func (sn *Snapshot) copyStats() (pages, bytes uint64) {
	lp, lb := sn.Labels.CopyStats()
	ip, ib := sn.Inverted.CopyStats()
	dp, db := sn.dyn.CopyStats()
	return lp + ip + dp, lb + ib + db
}

// cowClone prepares the next epoch's snapshot: the label index, the
// inverted index and the edge overlay are cloned copy-on-write (page
// tables copied, pages and lists shared until touched), the small
// category overlays are copied outright, and fresh providers are
// attached. The clone's providers start with empty scratch pools —
// inheritScratches moves the predecessor's pools over right before
// publication. Only the serialized updater calls it.
func (sn *Snapshot) cowClone() *Snapshot {
	lab := sn.Labels.Clone()
	return newSnapshot(sn.Epoch+1, sn.Backing, sn.Graph, lab, sn.Inverted.Clone(lab),
		sn.dyn.Clone(), cloneCatOverlay(sn.catAdd), cloneCatOverlay(sn.catDel))
}

// inheritScratches hands cur's pooled query scratches (and, via the
// provider redirect chain, those of queries still in flight) to sn's
// providers, so publication is warm on the read path: the first
// queries on the new epoch reuse the previous epoch's grown dominance
// tables and iterator free lists instead of paying cold O(|V|) growth.
// Returns how many scratches carried over.
func (sn *Snapshot) inheritScratches(cur *Snapshot) int {
	carried := sn.dijProv.InheritScratches(cur.dijProv)
	if sn.labelProv != nil {
		carried += sn.labelProv.InheritScratches(cur.labelProv)
	}
	return carried
}

func cloneCatOverlay(m map[Vertex][]Category) map[Vertex][]Category {
	if len(m) == 0 {
		return nil
	}
	c := make(map[Vertex][]Category, len(m))
	for v, cats := range m {
		c[v] = append([]Category(nil), cats...)
	}
	return c
}

// updaterScratch returns the system's long-lived label-repair scratch,
// allocating it on first use. Callers must hold updateMu.
func (s *System) updaterScratch() *label.UpdateScratch {
	if s.upScratch == nil {
		s.upScratch = label.NewUpdateScratch(s.Graph.NumVertices())
	}
	return s.upScratch
}

// applyWorkersLocked resolves the repair worker count for one batch.
// Callers must hold updateMu.
func (s *System) applyWorkersLocked() int {
	if s.repairWorkers > 0 {
		return s.repairWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// SetRepairWorkers caps the parallel label-repair stage of Apply.
// n <= 0 restores the default, GOMAXPROCS at Apply time; n == 1 forces
// the serial reference schedule. The published index is byte-identical
// for every setting — parallel repair commits in rank order and re-runs
// conflicting speculations — so this only trades update latency against
// CPU.
func (s *System) SetRepairWorkers(n int) {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	if n < 0 {
		n = 0
	}
	s.repairWorkers = n
}

// addCategory applies OpAddCategory to an unpublished clone.
func (sn *Snapshot) addCategory(v Vertex, c Category) {
	sn.Inverted.AddVertexCategory(v, c)
	if i := indexOfCat(sn.catDel[v], c); i >= 0 {
		sn.catDel[v] = append(sn.catDel[v][:i], sn.catDel[v][i+1:]...)
		return
	}
	if !sn.Graph.HasCategory(v, c) && !containsCat(sn.catAdd[v], c) {
		if sn.catAdd == nil {
			sn.catAdd = make(map[Vertex][]Category)
		}
		sn.catAdd[v] = append(sn.catAdd[v], c)
	}
}

// removeCategory applies OpRemoveCategory to an unpublished clone.
func (sn *Snapshot) removeCategory(v Vertex, c Category) {
	sn.Inverted.RemoveVertexCategory(v, c)
	if i := indexOfCat(sn.catAdd[v], c); i >= 0 {
		sn.catAdd[v] = append(sn.catAdd[v][:i], sn.catAdd[v][i+1:]...)
		return
	}
	if sn.Graph.HasCategory(v, c) && !containsCat(sn.catDel[v], c) {
		if sn.catDel == nil {
			sn.catDel = make(map[Vertex][]Category)
		}
		sn.catDel[v] = append(sn.catDel[v], c)
	}
}

func indexOfCat(cs []Category, c Category) int {
	for i, x := range cs {
		if x == c {
			return i
		}
	}
	return -1
}

// AddVertexCategory registers category c on vertex v (the dynamic
// category update of Section IV-C). Queries issued after the call see
// the new membership; the underlying Graph is immutable and unaffected.
//
// Deprecated: use Apply with OpAddCategory, which batches mutations
// into one published epoch.
func (s *System) AddVertexCategory(v Vertex, c Category) error {
	_, err := s.Apply(Update{Op: OpAddCategory, Vertex: v, Category: c})
	return err
}

// RemoveVertexCategory undoes AddVertexCategory.
//
// Deprecated: use Apply with OpRemoveCategory.
func (s *System) RemoveVertexCategory(v Vertex, c Category) error {
	_, err := s.Apply(Update{Op: OpRemoveCategory, Vertex: v, Category: c})
	return err
}

// InsertEdge applies a graph-structure update (Section IV-C): a new arc
// (u, v, w) — or a cheaper parallel arc, modelling a weight decrease.
// When dyn is non-nil the arc is mirrored into it, preserving the
// historical workflow where dyn.Rebuild() materializes the updated
// graph; the system itself now tracks its own overlay inside the
// snapshot chain, so dyn no longer participates in the index update.
//
// Deprecated: use Apply with OpInsertEdge, which batches mutations into
// one published epoch and needs no caller-managed overlay.
func (s *System) InsertEdge(dyn *graph.Dynamic, u, v Vertex, w Weight) error {
	if dyn != nil {
		if err := dyn.AddEdge(u, v, w); err != nil {
			return err
		}
	}
	_, err := s.Apply(Update{Op: OpInsertEdge, From: u, To: v, Weight: w})
	return err
}

// NewDynamic returns an edge overlay over the base graph.
//
// Deprecated: Apply tracks the system's own overlay; NewDynamic remains
// for callers that want dyn.Rebuild() to materialize an updated graph.
func (s *System) NewDynamic() *graph.Dynamic { return graph.NewDynamic(s.Graph) }

// SaveIndex serializes the current snapshot's label index (rebuild the
// inverted index with LoadSystem after reading it back). Labels folded
// in by dynamic edge insertions are included; dynamic category changes
// live in the inverted index and are not.
func (s *System) SaveIndex(w io.Writer) error {
	lab := s.Labels()
	if lab == nil {
		return fmt.Errorf("kosr: no label index to save")
	}
	_, err := lab.WriteTo(w)
	return err
}

// LoadSystem reconstructs a System from a graph and a label index
// serialized with SaveIndex.
func LoadSystem(g *Graph, r io.Reader) (*System, error) {
	lab, err := label.Read(r)
	if err != nil {
		return nil, err
	}
	if lab.NumVertices() != g.NumVertices() {
		return nil, fmt.Errorf("kosr: index covers %d vertices, graph has %d",
			lab.NumVertices(), g.NumVertices())
	}
	return NewSystemFromParts(g, lab, invindex.Build(g, lab)), nil
}

// SaveFlatIndex packs the current snapshot's label index and inverted
// label index into the flat file format at path (atomically: temp file
// + rename), ready for OpenFlatSystem to mmap. Unlike SaveIndex, a
// flat file carries the inverted index too, so loading performs no
// rebuild — and no parse at all.
func (s *System) SaveFlatIndex(path string) error {
	sn := s.Snapshot()
	if sn.Labels == nil {
		return fmt.Errorf("kosr: no label index to save")
	}
	return flat.WriteFile(path, sn.Labels, sn.Inverted)
}

// IsFlatIndex reports whether path begins with the flat index magic —
// the sniff loaders use to route a -index file to OpenFlatSystem
// versus the legacy LoadSystem reader. false for unreadable files.
func IsFlatIndex(path string) bool { return flat.IsFlat(path) }

// SaveDiskStore materializes the current snapshot's index as the
// on-disk store of Section IV-C (per-category sections located through
// a B+ tree).
func (s *System) SaveDiskStore(dir string) error {
	lab := s.Labels()
	if lab == nil {
		return fmt.Errorf("kosr: no label index to save")
	}
	return disk.Write(dir, s.Graph, lab)
}

// DiskSystem answers queries from a disk store, loading only the
// sections each query touches (the paper's SK-DB method). It is the
// per-query face of the store seam: each Do assembles a sparse index
// view through store.IndexStore.View instead of serving a resident
// pair.
type DiskSystem struct {
	Graph *Graph
	// Store is the underlying SK-DB store; exported for its IO
	// counters (Store.Seeks).
	Store *disk.Store

	// st adapts Store to the IndexStore seam; view() builds it lazily
	// so literal-constructed DiskSystems keep working.
	st store.IndexStore
}

// OpenDiskSystem opens a store written by SaveDiskStore.
func OpenDiskSystem(g *Graph, dir string) (*DiskSystem, error) {
	st, err := disk.Open(dir)
	if err != nil {
		return nil, err
	}
	ixs := store.Disk(st)
	if err := store.Validate(ixs, g); err != nil {
		st.Close()
		return nil, fmt.Errorf("kosr: %w", err)
	}
	return &DiskSystem{Graph: g, Store: st, st: ixs}, nil
}

// Close releases the store's files.
func (d *DiskSystem) Close() error { return d.Store.Close() }

// StoreKind reports the index backing (always StoreDisk).
func (d *DiskSystem) StoreKind() StoreKind { return StoreDisk }

// view returns the per-query index view for the request through the
// store seam.
func (d *DiskSystem) view(req Request) (*label.Index, *invindex.Index, error) {
	if d.st == nil {
		d.st = store.Disk(d.Store)
	}
	return d.st.View(req.Categories, req.Source, req.Target)
}

// Do answers a Request from disk, loading roughly |C|+4 records.
// Variant requests are not supported by the disk store.
func (d *DiskSystem) Do(ctx context.Context, req Request) (*Result, error) {
	if req.variant() {
		return nil, fmt.Errorf("kosr: disk stores do not answer variant requests")
	}
	lab, inv, err := d.view(req)
	if err != nil {
		return nil, err
	}
	prov := &core.LabelProvider{Graph: d.Graph, Labels: lab, Inv: inv}
	routes, st, err := core.Solve(ctx, d.Graph,
		Query{Source: req.Source, Target: req.Target, Categories: req.Categories, K: req.K},
		prov, req.coreOptions())
	if errors.Is(err, core.ErrBudgetExceeded) {
		return &Result{Routes: routes, Stats: st, Truncated: true}, nil
	}
	if err != nil {
		return nil, err
	}
	return &Result{Routes: routes, Stats: st}, nil
}

// Solve answers a query, loading roughly |C|+4 records from disk.
//
// Deprecated: use Do, which adds cancellation.
func (d *DiskSystem) Solve(q Query, opt Options) ([]Route, *Stats, error) {
	//lint:ignore ctxfirst the deprecated wrappers predate cancellation; their contract is an uncancellable call
	res, err := d.Do(context.Background(), Request{
		Source: q.Source, Target: q.Target, Categories: q.Categories, K: q.K,
		Method: opt.Method, MaxExamined: opt.MaxExamined,
		MaxDuration: opt.MaxDuration, TimeBreakdown: opt.TimeBreakdown,
	})
	if err != nil {
		return nil, nil, err
	}
	if res.Truncated {
		return res.Routes, res.Stats, core.ErrBudgetExceeded
	}
	return res.Routes, res.Stats, nil
}

// TopK answers the query with StarKOSR from disk.
func (d *DiskSystem) TopK(src, dst Vertex, cats []Category, k int) ([]Route, error) {
	routes, _, err := d.Solve(Query{Source: src, Target: dst, Categories: cats, K: k}, Options{})
	return routes, err
}
