package kosr

import (
	"context"
	"reflect"
	"testing"
)

// TestWarmCategoriesHint pins the Request.WarmCategories contract: the
// hint deduplicates and caps to a bounded row count, never changes the
// cache key, and never changes the answer.
func TestWarmCategoriesHint(t *testing.T) {
	if n := (Request{}).prewarmCatRows(); n != 0 {
		t.Errorf("no hint: prewarmCatRows = %d, want 0", n)
	}
	r := Request{WarmCategories: []Category{2, 1, 2, 0, 1}}
	if n := r.prewarmCatRows(); n != 3 {
		t.Errorf("deduped hint: prewarmCatRows = %d, want 3", n)
	}
	wide := make([]Category, 100)
	for i := range wide {
		wide[i] = Category(i)
	}
	if n := (Request{WarmCategories: wide}).prewarmCatRows(); n != maxWarmCategories {
		t.Errorf("wide hint: prewarmCatRows = %d, want the cap %d", n, maxWarmCategories)
	}

	g, s, tv, cats := fig1(t)
	base := Request{Source: s, Target: tv, Categories: cats, K: 3}
	hinted := base
	hinted.WarmCategories = cats
	bk, ok1 := base.CanonicalKey()
	hk, ok2 := hinted.CanonicalKey()
	if !ok1 || !ok2 || bk != hk {
		t.Errorf("WarmCategories changed the cache key: %q vs %q", bk, hk)
	}

	sys := NewSystem(g)
	want, err := sys.Do(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Do(context.Background(), hinted)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Routes, got.Routes) {
		t.Errorf("WarmCategories changed the routes:\n want %v\n got  %v", want.Routes, got.Routes)
	}
}
