// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section V) at laptop scale. Each benchmark reports the
// metrics the corresponding artifact plots: ns/op is the query run-time
// (Figures 3a, 3d–h, 4, 6, 7), and the custom metrics routes/query and
// nn/query are the series of Figures 3(b) and 3(c) and Table X.
//
// The full-fidelity artifacts (all five graphs, all methods, INF
// markers) are produced by `go run ./cmd/kosr bench -exp <id>`; these
// benchmarks run the same code paths on the two datasets the paper
// focuses on (CAL and FLA analogues) with small query batches so that
// `go test -bench=. -benchmem` completes in minutes.
package kosr

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/workload"
)

var (
	dsMu    sync.Mutex
	dsCache = map[string]*workload.Dataset{}
	chCache = map[string]*ch.Index{}
)

func benchConfig() workload.Config {
	cfg := workload.Config{
		NumQueries:  3,
		Seed:        1,
		MaxExamined: 500_000,
		MaxDuration: 2 * time.Second,
	}
	cfg.Fill()
	return cfg
}

func dataset(b *testing.B, a gen.Analogue) *workload.Dataset {
	b.Helper()
	dsMu.Lock()
	defer dsMu.Unlock()
	if d, ok := dsCache[string(a)]; ok {
		return d
	}
	cfg := benchConfig()
	d, err := workload.Prepare(a, cfg)
	if err != nil {
		b.Fatal(err)
	}
	dsCache[string(a)] = d
	return d
}

func hierarchy(b *testing.B, d *workload.Dataset) *ch.Index {
	b.Helper()
	dsMu.Lock()
	defer dsMu.Unlock()
	if h, ok := chCache[d.Name]; ok {
		return h
	}
	h := ch.Build(d.G)
	chCache[d.Name] = h
	return h
}

// runMethod executes one (dataset, method, queries) cell b.N times and
// reports the Figure 3(b)/(c) metrics alongside ns/op.
func runMethod(b *testing.B, d *workload.Dataset, m workload.MethodID, lenC, k int) {
	b.Helper()
	cfg := benchConfig()
	queries := workload.RandomQueries(d.G, cfg.NumQueries, lenC, k, cfg.Seed)
	var last workload.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := d.RunMethod(context.Background(), m, queries, cfg, false)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.StopTimer()
	if last.INF {
		b.ReportMetric(1, "INF")
		return
	}
	b.ReportMetric(last.AvgExamined, "routes/query")
	b.ReportMetric(last.AvgNN, "nn/query")
	b.ReportMetric(last.AvgTimeMS, "ms/query")
}

// --- Tables ---

// BenchmarkTable3 replays the PruningKOSR trace of Table III.
func BenchmarkTable3PruningKOSRTrace(b *testing.B) {
	g := graph.Figure1()
	prov := core.NewLabelProvider(g, nil)
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	q := core.Query{Source: s, Target: tv, Categories: []graph.Category{0, 1, 2}, K: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace := &core.Trace{}
		if _, _, err := core.Solve(context.Background(), g, q, prov, core.Options{Method: core.MethodPK, Trace: trace}); err != nil {
			b.Fatal(err)
		}
		if len(trace.Steps) != 13 {
			b.Fatalf("steps=%d", len(trace.Steps))
		}
	}
}

// BenchmarkTable6 replays the StarKOSR trace of Table VI.
func BenchmarkTable6StarKOSRTrace(b *testing.B) {
	g := graph.Figure1()
	prov := core.NewLabelProvider(g, nil)
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	q := core.Query{Source: s, Target: tv, Categories: []graph.Category{0, 1, 2}, K: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace := &core.Trace{}
		if _, _, err := core.Solve(context.Background(), g, q, prov, core.Options{Method: core.MethodSK, Trace: trace}); err != nil {
			b.Fatal(err)
		}
		if len(trace.Steps) != 9 {
			b.Fatalf("steps=%d", len(trace.Steps))
		}
	}
}

// BenchmarkTable7 generates the dataset analogues of Table VII.
func BenchmarkTable7DatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, a := range gen.AllAnalogues {
			g, err := gen.BuildAnalogue(a, gen.AnalogueOptions{Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if g.NumVertices() == 0 {
				b.Fatal("empty graph")
			}
		}
	}
}

// BenchmarkTable9 measures the preprocessing of Table IX: building the
// 2-hop label index (the dominant cost) on the CAL analogue.
func BenchmarkTable9PreprocessingCAL(b *testing.B) {
	g, err := gen.BuildAnalogue(gen.CAL, gen.AnalogueOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := label.Build(g)
		st := ix.Stats()
		b.ReportMetric(st.AvgIn, "avgLin")
		b.ReportMetric(st.AvgOut, "avgLout")
	}
}

// BenchmarkTable10 reproduces the Table X breakdown: PK vs SK on the FLA
// analogue with per-phase wall-clock attribution.
func BenchmarkTable10Breakdown(b *testing.B) {
	d := dataset(b, gen.FLA)
	cfg := benchConfig()
	queries := workload.RandomQueries(d.G, cfg.NumQueries, cfg.LenC, cfg.K, cfg.Seed)
	for _, m := range []workload.MethodID{workload.MPK, workload.MSK} {
		b.Run(string(m), func(b *testing.B) {
			var last workload.Result
			for i := 0; i < b.N; i++ {
				r, err := d.RunMethod(context.Background(), m, queries, cfg, true)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.AvgNNTimeMS, "nn-ms")
			b.ReportMetric(last.AvgPQTimeMS, "pq-ms")
			b.ReportMetric(last.AvgEstTimeMS, "est-ms")
		})
	}
}

// --- Figures ---

// BenchmarkFig3 covers Figures 3(a)–3(c): per-graph, per-method query
// cost with examined-route and NN-query counts as reported metrics.
func BenchmarkFig3QueryPerformance(b *testing.B) {
	for _, a := range []gen.Analogue{gen.CAL, gen.FLA, gen.GPlus} {
		d := dataset(b, a)
		for _, m := range []workload.MethodID{
			workload.MKPNE, workload.MPK, workload.MSK, workload.MSKDB, workload.MSKDij,
		} {
			b.Run(string(a)+"/"+string(m), func(b *testing.B) {
				cfg := benchConfig()
				runMethod(b, d, m, cfg.LenC, cfg.K)
			})
		}
	}
}

// BenchmarkFig3d / Fig4: effect of k on the FLA analogue.
func BenchmarkFig3dEffectOfK(b *testing.B) {
	d := dataset(b, gen.FLA)
	for _, k := range []int{10, 30, 50} {
		b.Run("k="+itoa(k)+"/SK", func(b *testing.B) { runMethod(b, d, workload.MSK, 6, k) })
	}
}

// BenchmarkFig3e: effect of k on the CAL analogue.
func BenchmarkFig3eEffectOfK(b *testing.B) {
	d := dataset(b, gen.CAL)
	for _, k := range []int{10, 30, 50} {
		b.Run("k="+itoa(k)+"/SK", func(b *testing.B) { runMethod(b, d, workload.MSK, 6, k) })
		b.Run("k="+itoa(k)+"/PK", func(b *testing.B) { runMethod(b, d, workload.MPK, 6, k) })
	}
}

// BenchmarkFig3f: effect of |C| on the FLA analogue.
func BenchmarkFig3fEffectOfC(b *testing.B) {
	d := dataset(b, gen.FLA)
	for _, lenC := range []int{2, 6, 10} {
		b.Run("C="+itoa(lenC)+"/SK", func(b *testing.B) { runMethod(b, d, workload.MSK, lenC, 30) })
	}
}

// BenchmarkFig3g: effect of |C| on the CAL analogue.
func BenchmarkFig3gEffectOfC(b *testing.B) {
	d := dataset(b, gen.CAL)
	for _, lenC := range []int{2, 6, 10} {
		b.Run("C="+itoa(lenC)+"/SK", func(b *testing.B) { runMethod(b, d, workload.MSK, lenC, 30) })
		b.Run("C="+itoa(lenC)+"/PK", func(b *testing.B) { runMethod(b, d, workload.MPK, lenC, 30) })
	}
}

// BenchmarkFig3h: effect of |Ci| on the FLA analogue. Category
// reassignments share the 2-hop labels (topology is unchanged).
func BenchmarkFig3hEffectOfCi(b *testing.B) {
	base := dataset(b, gen.FLA)
	n := base.G.NumVertices()
	for _, size := range []int{n / 80, n / 20, n / 10} {
		g, err := gen.BuildAnalogue(gen.FLA, gen.AnalogueOptions{Seed: 1, CatSize: size, NumCats: 24})
		if err != nil {
			b.Fatal(err)
		}
		d, err := workload.PrepareReusingLabels("FLA", g, base.Lab)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("Ci="+itoa(size)+"/SK", func(b *testing.B) { runMethod(b, d, workload.MSK, 6, 30) })
	}
}

// BenchmarkFig4: small k on the CAL analogue.
func BenchmarkFig4SmallK(b *testing.B) {
	d := dataset(b, gen.CAL)
	for _, k := range []int{1, 2, 5} {
		b.Run("k="+itoa(k)+"/SK", func(b *testing.B) { runMethod(b, d, workload.MSK, 6, k) })
	}
}

// BenchmarkFig5: the searching-space profile of SK (per-category
// examined routes); the profile peak is reported as a metric.
func BenchmarkFig5SearchSpace(b *testing.B) {
	d := dataset(b, gen.FLA)
	cfg := benchConfig()
	queries := workload.RandomQueries(d.G, cfg.NumQueries, cfg.LenC, cfg.K, cfg.Seed)
	var last workload.Result
	for i := 0; i < b.N; i++ {
		r, err := d.RunMethod(context.Background(), workload.MSK, queries, cfg, false)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	peak, peakAt := 0.0, 0
	for i, c := range last.ExaminedPerLevel {
		if c > peak {
			peak, peakAt = c, i
		}
	}
	b.ReportMetric(peak, "peak-routes")
	b.ReportMetric(float64(peakAt), "peak-category")
	if len(last.ExaminedPerLevel) > 0 {
		b.ReportMetric(last.ExaminedPerLevel[len(last.ExaminedPerLevel)-1], "final-routes")
	}
}

// BenchmarkFig6: Zipfian category skew on the FLA analogue, reusing the
// shared labels across skew factors.
func BenchmarkFig6Zipf(b *testing.B) {
	base := dataset(b, gen.FLA)
	for _, f := range []float64{1.2, 1.8} {
		gb := gen.GridBuilder(gen.GridOptions{
			Rows: 112, Cols: 128, Directed: true, MaxWeight: 12, Diagonals: true,
			Seed: 1 + int64(len("FLA"))*1001, // matches gen.BuildAnalogue's FLA seed
		})
		gen.AssignZipfCategories(gb, 112*128, 24, f, 9)
		g, err := gb.Build()
		if err != nil {
			b.Fatal(err)
		}
		d, err := workload.PrepareReusingLabels("FLA-zipf", g, base.Lab)
		if err != nil {
			b.Fatal(err)
		}
		name := "f=1.2"
		if f == 1.8 {
			name = "f=1.8"
		}
		b.Run(name+"/SK", func(b *testing.B) { runMethod(b, d, workload.MSK, 6, 30) })
		b.Run(name+"/PK", func(b *testing.B) { runMethod(b, d, workload.MPK, 6, 30) })
	}
}

// BenchmarkFig7: OSR queries (k = 1) including the GSP baselines.
func BenchmarkFig7OSR(b *testing.B) {
	for _, a := range []gen.Analogue{gen.CAL, gen.FLA} {
		d := dataset(b, a)
		cfg := benchConfig()
		queries := workload.RandomQueries(d.G, cfg.NumQueries, cfg.LenC, 1, cfg.Seed)
		b.Run(string(a)+"/SK", func(b *testing.B) { runMethod(b, d, workload.MSK, cfg.LenC, 1) })
		b.Run(string(a)+"/PK", func(b *testing.B) { runMethod(b, d, workload.MPK, cfg.LenC, 1) })
		b.Run(string(a)+"/GSP", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, _, _, err := core.GSP(d.G, q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(string(a)+"/GSP-CH", func(b *testing.B) {
			h := hierarchy(b, d)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, _, _, err := core.GSPCH(d.G, h, q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblation isolates the two design choices of the paper:
// dominance pruning (PK) and A* estimation (KPNE+A*), against neither
// (KPNE) and both (SK), on the CAL analogue.
func BenchmarkAblation(b *testing.B) {
	d := dataset(b, gen.CAL)
	for _, m := range []workload.MethodID{
		workload.MKPNE, workload.MPK, workload.MKStar, workload.MSK,
	} {
		b.Run(string(m), func(b *testing.B) { runMethod(b, d, m, 6, 30) })
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
