package kosr_test

import (
	"context"
	"fmt"

	kosr "repro"
)

// The paper's running example through the context-first Request API:
// Alice travels from s to t via a shopping mall, a restaurant, and a
// cinema (Example 1). Cancelling the context would abort the search.
func ExampleSystem_Do() {
	g := kosr.Figure1()
	sys := kosr.NewSystem(g)

	s, _ := g.VertexByName("s")
	t, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")

	res, _ := sys.Do(context.Background(), kosr.Request{
		Source: s, Target: t, Categories: []kosr.Category{ma, re, ci}, K: 3,
	})
	for i, r := range res.Routes {
		fmt.Printf("%d: cost %g\n", i+1, r.Cost)
	}
	// Output:
	// 1: cost 20
	// 2: cost 21
	// 3: cost 22
}

// Progressive search: DoStream computes routes one at a time, so "show
// me more alternatives" interfaces never pick k up front. Breaking out
// of the loop releases the search state.
func ExampleSystem_DoStream() {
	g := kosr.Figure1()
	sys := kosr.NewSystem(g)

	s, _ := g.VertexByName("s")
	t, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")

	for r, err := range sys.DoStream(context.Background(), kosr.Request{
		Source: s, Target: t, Categories: []kosr.Category{ma, re, ci},
	}) {
		if err != nil || r.Cost > 21 {
			break
		}
		fmt.Printf("cost %g\n", r.Cost)
	}
	// Output:
	// cost 20
	// cost 21
}

// The paper's running example: Alice travels from s to t via a shopping
// mall, a restaurant, and a cinema (Example 1).
func ExampleSystem_TopK() {
	g := kosr.Figure1()
	sys := kosr.NewSystem(g)

	s, _ := g.VertexByName("s")
	t, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")

	routes, _ := sys.TopK(s, t, []kosr.Category{ma, re, ci}, 3)
	for i, r := range routes {
		fmt.Printf("%d: cost %g via", i+1, r.Cost)
		for _, v := range r.Witness[1 : len(r.Witness)-1] {
			fmt.Printf(" %s", g.VertexName(v))
		}
		fmt.Println()
	}
	// Output:
	// 1: cost 20 via a b d
	// 2: cost 21 via a e d
	// 3: cost 22 via c b d
}

// Building a custom graph: two POI categories on a five-vertex chain.
func ExampleNewBuilder() {
	b := kosr.NewBuilder(5, false) // undirected
	fuel := b.NameCategory("fuel")
	food := b.NameCategory("food")
	b.AddEdge(0, 1, 2).AddEdge(1, 2, 2).AddEdge(2, 3, 2).AddEdge(3, 4, 2)
	b.AddCategory(1, fuel)
	b.AddCategory(3, food)
	g, _ := b.Build()

	sys := kosr.NewSystem(g)
	routes, _ := sys.TopK(0, 4, []kosr.Category{fuel, food}, 1)
	fmt.Println(routes[0])
	// Output:
	// ⟨0 1 3 4⟩(8)
}

// Query variants (Section IV-C): no fixed source, and a category filter.
func ExampleSystem_SolveVariant() {
	g := kosr.Figure1()
	sys := kosr.NewSystem(g)
	t, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")

	routes, _, _ := sys.SolveVariant(kosr.VariantQuery{
		NoSource:   true, // start at any shopping mall
		Target:     t,
		Categories: []kosr.Category{ma, re, ci},
		K:          1,
	}, kosr.Options{})
	fmt.Printf("start at %s, cost %g\n", g.VertexName(routes[0].Witness[0]), routes[0].Cost)
	// Output:
	// start at c, cost 12
}
