package kosr

import (
	"context"
	"iter"
	"testing"

	"repro/internal/gen"
)

// TestScratchForwardedOnStreamRelease pins the forwarded-release
// accounting: a scratch checked out by a stream that outlives an index
// publication must, on release, be forwarded to the live epoch's pool
// (counted in ApplyStats().ScratchForwarded) rather than stranded on
// the superseded provider.
func TestScratchForwardedOnStreamRelease(t *testing.T) {
	g, s, tv, cats := fig1(t)
	sys := NewSystem(g)

	next, stop := iter.Pull2(sys.Snapshot().DoStream(context.Background(), Request{Source: s, Target: tv, Categories: cats}))
	if _, err, ok := next(); !ok || err != nil {
		t.Fatalf("first streamed route: ok=%v err=%v", ok, err)
	}
	if n := sys.ScratchesInFlight(); n != 1 {
		t.Fatalf("scratches in flight=%d with a paused stream, want 1", n)
	}

	// Publish a new epoch while the stream still holds its scratch. The
	// heavy parallel edge changes nothing the stream would notice.
	if _, err := sys.Apply(Update{Op: OpInsertEdge, From: s, To: tv, Weight: 1000}); err != nil {
		t.Fatal(err)
	}
	if f := sys.ApplyStats().ScratchForwarded; f != 0 {
		t.Fatalf("forwarded=%d before the stream released its scratch", f)
	}

	stop() // abandon the stream; its scratch releases into the superseded provider
	if f := sys.ApplyStats().ScratchForwarded; f != 1 {
		t.Fatalf("forwarded=%d after release, want 1", f)
	}
	if n := sys.ScratchesInFlight(); n != 0 {
		t.Fatalf("scratches in flight=%d after release, want 0", n)
	}

	// The forwarded scratch must be usable by the live epoch.
	res, err := sys.Do(context.Background(), Request{Source: s, Target: tv, Categories: cats, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) != 3 || res.Routes[0].Cost != 20 {
		t.Fatalf("post-forward routes=%v", res.Routes)
	}
}

// TestPageResidencyAcrossEpochs checks the shared/owned page gauge on a
// graph wider than one index page: after a local update the live
// snapshot owns the pages the apply touched and still shares the
// distant ones with the superseded epoch.
func TestPageResidencyAcrossEpochs(t *testing.T) {
	b := gen.GridBuilder(gen.GridOptions{Rows: 36, Cols: 36, Seed: 7})
	gen.AssignUniformCategories(b, 36*36, 2, 40, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(g)

	old := sys.Snapshot()
	s1, o1 := old.PageResidency()
	if s1+o1 == 0 {
		t.Fatal("fresh index reports no materialized pages")
	}

	// A cheap parallel edge between two corner neighbours rewrites
	// labels around the corner and nothing far away.
	if _, err := sys.Apply(Update{Op: OpInsertEdge, From: 0, To: 1, Weight: 0.01}); err != nil {
		t.Fatal(err)
	}
	s2, o2 := sys.Snapshot().PageResidency()
	if o2 == 0 {
		t.Fatalf("post-apply residency shared=%d owned=%d: an applied edge must own the pages it touched", s2, o2)
	}
	if s2 == 0 {
		t.Fatalf("post-apply residency shared=%d owned=%d: a local update must leave distant pages shared", s2, o2)
	}

	// The superseded snapshot still answers its own residency.
	so, oo := old.PageResidency()
	if so+oo == 0 {
		t.Fatal("superseded snapshot lost its pages")
	}
}
