package kosr

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// fig1Request returns the canonical Figure 1 top-1 request.
func fig1Request(t *testing.T, g *Graph) Request {
	t.Helper()
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")
	return Request{Source: s, Target: tv, Categories: []Category{ma, re, ci}, K: 1}
}

func topCost(t *testing.T, sn *Snapshot, req Request) Weight {
	t.Helper()
	res, err := sn.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) == 0 {
		t.Fatal("no routes")
	}
	return res.Routes[0].Cost
}

// TestApplyPublishesNewEpoch pins the snapshot contract: Apply bumps
// the epoch and publishes a new index version, queries issued after it
// see the updated answers, and a snapshot pinned before the update
// keeps answering from the old version.
func TestApplyPublishesNewEpoch(t *testing.T) {
	g := Figure1()
	sys := NewSystem(g)
	req := fig1Request(t, g)
	d, _ := g.VertexByName("d")
	tv, _ := g.VertexByName("t")

	if e := sys.Epoch(); e != 1 {
		t.Fatalf("fresh epoch=%d, want 1", e)
	}
	old := sys.Snapshot()
	if c := topCost(t, old, req); c != 20 {
		t.Fatalf("pre-update cost=%g, want 20", c)
	}

	epoch, err := sys.Apply(Update{Op: OpInsertEdge, From: d, To: tv, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || sys.Epoch() != 2 {
		t.Fatalf("epoch=%d sys.Epoch()=%d, want 2", epoch, sys.Epoch())
	}
	if c := topCost(t, sys.Snapshot(), req); c != 17 {
		t.Fatalf("post-update cost=%g, want 17", c)
	}
	// The pinned pre-update snapshot is immutable: same answer as before.
	if c := topCost(t, old, req); c != 20 {
		t.Fatalf("pinned old snapshot cost=%g, want 20 (snapshot mutated!)", c)
	}
	if old.Epoch != 1 {
		t.Fatalf("old snapshot epoch=%d, want 1", old.Epoch)
	}
}

// TestApplyBatchAtomic pins all-or-nothing batch semantics: a batch
// with any invalid op is rejected whole, leaving the published snapshot
// (and its epoch) untouched even when earlier ops were valid.
func TestApplyBatchAtomic(t *testing.T) {
	g := Figure1()
	sys := NewSystem(g)
	req := fig1Request(t, g)
	d, _ := g.VertexByName("d")
	tv, _ := g.VertexByName("t")

	if _, err := sys.Apply(
		Update{Op: OpInsertEdge, From: d, To: tv, Weight: 1}, // valid
		Update{Op: OpInsertEdge, From: 0, To: 99, Weight: 1}, // out of range
	); err == nil {
		t.Fatal("want error for out-of-range edge")
	}
	if e := sys.Epoch(); e != 1 {
		t.Fatalf("epoch=%d after rejected batch, want 1", e)
	}
	if c := topCost(t, sys.Snapshot(), req); c != 20 {
		t.Fatalf("cost=%g after rejected batch, want 20 (partial batch applied!)", c)
	}
	for _, bad := range []Update{
		{Op: "resize-graph"},
		{Op: OpInsertEdge, From: d, To: tv, Weight: -1},
		{Op: OpAddCategory, Vertex: -1, Category: 0},
		{Op: OpAddCategory, Vertex: 0, Category: -2},
	} {
		if _, err := sys.Apply(bad); err == nil {
			t.Fatalf("update %+v: want error", bad)
		}
	}
	// An empty batch publishes nothing.
	if e, err := sys.Apply(); err != nil || e != 1 {
		t.Fatalf("empty batch: epoch=%d err=%v", e, err)
	}
}

func TestApplyRequiresIndex(t *testing.T) {
	sys := NewSystemWithoutIndex(Figure1())
	if _, err := sys.Apply(Update{Op: OpAddCategory, Vertex: 0, Category: 0}); err == nil {
		t.Fatal("want error without label index")
	}
}

// TestApplyCategoryThenEdgeStaysExact is the regression test for the
// dynamic category overlay: a category added at run time must keep its
// inverted lists exact across a later edge insertion that changes the
// recategorized vertex's labels (Refresh must see the dynamic
// membership, not just the base graph's).
func TestApplyCategoryThenEdgeStaysExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(10)
		// Base graph: vertex v deliberately left out of category 2.
		b := NewBuilder(n, true)
		b.EnsureCategories(3)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(Vertex(rng.Intn(n)), Vertex(rng.Intn(n)), float64(1+rng.Intn(9)))
		}
		v := Vertex(rng.Intn(n))
		for u := 0; u < n; u++ {
			c := Category(rng.Intn(3))
			if Vertex(u) == v && c == 2 {
				c = 1
			}
			b.AddCategory(Vertex(u), c)
		}
		g := b.MustBuild()
		sys := NewSystem(g)

		// Dynamic recategorization, then an edge insertion whose label
		// deltas touch v's lists.
		eu, ev := Vertex(rng.Intn(n)), Vertex(rng.Intn(n))
		if _, err := sys.Apply(
			Update{Op: OpAddCategory, Vertex: v, Category: 2},
			Update{Op: OpInsertEdge, From: eu, To: ev, Weight: 1},
		); err != nil {
			t.Fatal(err)
		}

		// Oracle: the updated graph with v carrying category 2 natively.
		ob := NewBuilder(n, true)
		ob.EnsureCategories(3)
		g.Edges(func(e graph.Edge) bool {
			ob.AddEdge(e.From, e.To, e.W)
			return true
		})
		ob.AddEdge(eu, ev, 1)
		for u := 0; u < n; u++ {
			for _, c := range g.Categories(Vertex(u)) {
				ob.AddCategory(Vertex(u), c)
			}
		}
		ob.AddCategory(v, 2)
		full := ob.MustBuild()

		q := Query{
			Source:     Vertex(rng.Intn(n)),
			Target:     Vertex(rng.Intn(n)),
			Categories: []Category{0, 1, 2},
			K:          3,
		}
		oracle, err := core.BruteForce(full, q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Do(context.Background(), Request{
			Source: q.Source, Target: q.Target, Categories: q.Categories, K: q.K,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Routes) != len(oracle) {
			t.Fatalf("trial %d: got %d routes, oracle %d", trial, len(res.Routes), len(oracle))
		}
		for i := range oracle {
			if res.Routes[i].Cost != oracle[i].Cost {
				t.Fatalf("trial %d route %d: cost %v, oracle %v", trial, i, res.Routes[i].Cost, oracle[i].Cost)
			}
		}
	}
}

// TestConcurrentQueriesAndUpdates is the -race stress test of the
// snapshot design: query goroutines hammer Do/DoStream while the
// updater applies edge insertions and category churn. Every observed
// answer must belong to some published epoch's expected value, and — the
// monotonicity contract — a query started after Apply returns must see
// that epoch's (or a later) answer, never a pre-update one.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	g := Figure1()
	sys := NewSystem(g)
	req := fig1Request(t, g)
	d, _ := g.VertexByName("d")
	tv, _ := g.VertexByName("t")
	// The churned category is outside the query's sequence (a brand-new
	// id, exercising the inverted index's grow path), so it never
	// changes the expected costs.
	newCat := Category(g.NumCategories())

	// Successively cheaper parallel arcs d→t lower the optimum
	// 20 → 19 → 18 → 17; floor holds the cheapest cost published so
	// far, so readers can assert monotone freshness.
	weights := []Weight{3, 2, 1}
	expected := map[Weight]bool{20: true, 19: true, 18: true, 17: true}
	var floor atomic.Value
	floor.Store(Weight(20))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				want := floor.Load().(Weight) // published before our query starts
				var got Weight
				if worker%2 == 0 {
					res, err := sys.Do(context.Background(), req)
					if err != nil {
						errCh <- err
						return
					}
					got = res.Routes[0].Cost
				} else {
					for r, err := range sys.DoStream(context.Background(), req) {
						if err != nil {
							errCh <- err
							return
						}
						got = r.Cost
						break
					}
				}
				if !expected[got] {
					t.Errorf("worker %d: cost %g not in expected set", worker, got)
					return
				}
				if got > want {
					t.Errorf("worker %d: stale answer %g after epoch published %g", worker, got, want)
					return
				}
			}
		}(w)
	}

	for _, w := range weights {
		// Category churn rides along to race the category-update path.
		if _, err := sys.Apply(
			Update{Op: OpInsertEdge, From: d, To: tv, Weight: w},
			Update{Op: OpAddCategory, Vertex: 0, Category: newCat},
		); err != nil {
			t.Fatal(err)
		}
		floor.Store(20 - (4 - w)) // new optimum is published now
		if _, err := sys.Apply(Update{Op: OpRemoveCategory, Vertex: 0, Category: newCat}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // let queries land on this epoch
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if e := sys.Epoch(); e != 1+uint64(2*len(weights)) {
		t.Fatalf("epoch=%d, want %d", e, 1+2*len(weights))
	}
	if c := topCost(t, sys.Snapshot(), req); c != 17 {
		t.Fatalf("final cost=%g, want 17", c)
	}
}

// TestCanonicalKeyEpoch pins that the index epoch participates in the
// cache key, which is the whole invalidation story: post-update queries
// can never hit a pre-update cache entry.
func TestCanonicalKeyEpoch(t *testing.T) {
	base := Request{Source: 1, Target: 2, Categories: []Category{3}, K: 1}
	k1, ok := base.CanonicalKey()
	if !ok {
		t.Fatal("not cacheable")
	}
	bumped := base
	bumped.IndexEpoch = 2
	k2, ok := bumped.CanonicalKey()
	if !ok || k2 == k1 {
		t.Fatalf("epoch must change the key: %q vs %q", k1, k2)
	}
}

// TestDoTruncatedByExamined pins the deterministic-truncation marker
// that lets the server cache examined-budget truncations.
func TestDoTruncatedByExamined(t *testing.T) {
	g := Figure1()
	sys := NewSystem(g)
	req := fig1Request(t, g)
	req.K = 30
	req.MaxExamined = 12
	res, err := sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !res.TruncatedByExamined {
		t.Fatalf("res=%+v, want Truncated and TruncatedByExamined", res)
	}
}

// TestExpandWitnessSeesDynamicEdges pins the expansion fix: a witness
// leg answered through a dynamically inserted arc must expand into a
// walk that uses that arc, while a snapshot pinned before the update
// keeps expanding on its own (pre-update) graph.
func TestExpandWitnessSeesDynamicEdges(t *testing.T) {
	b := NewBuilder(3, true)
	b.EnsureCategories(1)
	b.AddEdge(0, 1, 5).AddEdge(1, 2, 5)
	b.AddCategory(1, 0)
	g := b.MustBuild()
	sys := NewSystem(g)
	old := sys.Snapshot()

	if _, err := sys.Apply(Update{Op: OpInsertEdge, From: 0, To: 2, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	walk := sys.ExpandWitness([]Vertex{0, 2})
	if len(walk) != 2 || walk[0] != 0 || walk[1] != 2 {
		t.Fatalf("post-update walk=%v, want the dynamic arc [0 2]", walk)
	}
	if w := old.ExpandWitness([]Vertex{0, 2}); len(w) != 3 {
		t.Fatalf("pinned old snapshot walk=%v, want the 3-vertex base path", w)
	}
}

// TestDynamicCategoryQueryable pins the grown-id loop: a category id
// beyond the graph's static set, populated via Apply, must be usable in
// a Request against the snapshot that carries it (and rejected by a
// snapshot that predates it only in the sense of returning no routes —
// the id space is snapshot-wide).
func TestDynamicCategoryQueryable(t *testing.T) {
	g := Figure1()
	sys := NewSystem(g)
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	bv, _ := g.VertexByName("b")
	newCat := Category(g.NumCategories())

	// Before the category exists anywhere, the id is out of range.
	if _, err := sys.Do(context.Background(), Request{
		Source: s, Target: tv, Categories: []Category{newCat}, K: 1,
	}); err == nil {
		t.Fatal("want out-of-range error before the category exists")
	}

	if _, err := sys.Apply(Update{Op: OpAddCategory, Vertex: bv, Category: newCat}); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Do(context.Background(), Request{
		Source: s, Target: tv, Categories: []Category{newCat}, K: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) != 1 || res.Routes[0].Witness[1] != bv {
		t.Fatalf("routes=%v, want one route through b", res.Routes)
	}
}
